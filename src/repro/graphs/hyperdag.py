"""HyperDAG file format: serialization of computational DAGs.

The paper's DAG database stores computational DAGs in a hypergraph format:
for every node ``v`` with at least one successor there is a hyperedge
containing ``v`` and all of its direct successors (paper Section 5 /
Appendix B).  This emphasizes that the output of ``v`` only needs to be sent
once to each processor, however many successors live there; for scheduling
purposes the representation is equivalent to the DAG and is converted back
on load.

File format (plain text)::

    %% arbitrary comment lines start with '%'
    <num_hyperedges> <num_nodes> <num_pins>
    <hyperedge_id> <node_id>          # one line per pin; the first pin of
    ...                               # each hyperedge is its source node
    <node_id> <work_weight> <comm_weight>   # one line per node
    ...

This mirrors the structure of the files in the paper's HyperDAG_DB
repository closely enough that conversion scripts are one-liners, while
remaining fully self-describing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from .dag import ComputationalDAG, DagValidationError

__all__ = [
    "dag_to_hyperdag",
    "hyperdag_to_dag",
    "write_hyperdag",
    "read_hyperdag",
    "dumps_hyperdag",
    "loads_hyperdag",
]

PathLike = Union[str, Path]


def dag_to_hyperdag(dag: ComputationalDAG) -> List[List[int]]:
    """Hyperedges of a DAG: ``[v, successors(v)...]`` for each non-sink ``v``."""
    hyperedges: List[List[int]] = []
    for v in dag.nodes():
        children = dag.children(v)
        if children:
            hyperedges.append([v] + sorted(children))
    return hyperedges


def hyperdag_to_dag(
    num_nodes: int,
    hyperedges: List[List[int]],
    work=None,
    comm=None,
    name: str = "hyperdag",
) -> ComputationalDAG:
    """Rebuild a DAG from hyperedges (first pin of each hyperedge = source)."""
    edges: List[Tuple[int, int]] = []
    for he in hyperedges:
        if not he:
            continue
        src = he[0]
        for v in he[1:]:
            edges.append((src, v))
    return ComputationalDAG(num_nodes, edges, work, comm, name=name)


def dumps_hyperdag(dag: ComputationalDAG, comment: str = "") -> str:
    """Serialize a DAG to the hyperDAG text format."""
    hyperedges = dag_to_hyperdag(dag)
    num_pins = sum(len(he) for he in hyperedges)
    lines: List[str] = []
    lines.append(f"% hyperDAG representation of {dag.name}")
    if comment:
        for c in comment.splitlines():
            lines.append(f"% {c}")
    lines.append("% format: <hyperedges> <nodes> <pins>; pin lines; node weight lines")
    lines.append(f"{len(hyperedges)} {dag.n} {num_pins}")
    for he_id, he in enumerate(hyperedges):
        for v in he:
            lines.append(f"{he_id} {v}")
    for v in dag.nodes():
        lines.append(f"{v} {int(dag.work[v])} {int(dag.comm[v])}")
    return "\n".join(lines) + "\n"


def loads_hyperdag(text: str, name: str = "hyperdag") -> ComputationalDAG:
    """Parse the hyperDAG text format back into a :class:`ComputationalDAG`."""
    tokens: List[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        tokens.append(line)
    if not tokens:
        raise DagValidationError("empty hyperDAG file")
    header = tokens[0].split()
    if len(header) != 3:
        raise DagValidationError(f"malformed hyperDAG header: {tokens[0]!r}")
    num_hyperedges, num_nodes, num_pins = (int(x) for x in header)
    expected = 1 + num_pins + num_nodes
    if len(tokens) < expected:
        raise DagValidationError(
            f"hyperDAG file truncated: expected {expected} data lines, got {len(tokens)}"
        )
    pin_lines = tokens[1 : 1 + num_pins]
    weight_lines = tokens[1 + num_pins : 1 + num_pins + num_nodes]

    hyperedges: Dict[int, List[int]] = {}
    for line in pin_lines:
        parts = line.split()
        if len(parts) != 2:
            raise DagValidationError(f"malformed pin line: {line!r}")
        he_id, node = int(parts[0]), int(parts[1])
        if not (0 <= he_id < num_hyperedges):
            raise DagValidationError(f"hyperedge id {he_id} out of range")
        hyperedges.setdefault(he_id, []).append(node)

    work = [1] * num_nodes
    comm = [1] * num_nodes
    for line in weight_lines:
        parts = line.split()
        if len(parts) != 3:
            raise DagValidationError(f"malformed node weight line: {line!r}")
        v, w, c = int(parts[0]), int(parts[1]), int(parts[2])
        if not (0 <= v < num_nodes):
            raise DagValidationError(f"node id {v} out of range")
        work[v] = w
        comm[v] = c

    ordered = [hyperedges[i] for i in sorted(hyperedges)]
    return hyperdag_to_dag(num_nodes, ordered, work, comm, name=name)


def write_hyperdag(dag: ComputationalDAG, path: PathLike, comment: str = "") -> None:
    """Write a DAG to ``path`` in the hyperDAG text format."""
    Path(path).write_text(dumps_hyperdag(dag, comment=comment))


def read_hyperdag(path: PathLike, name: str = "") -> ComputationalDAG:
    """Read a DAG from a hyperDAG text file."""
    p = Path(path)
    return loads_hyperdag(p.read_text(), name=name or p.stem)
