"""Fine-grained computational DAG generators (paper Appendix B.2).

These generators reproduce the paper's synthetic fine-grained DAG tool: each
node of the DAG is a scalar operation (a multiplication, an addition chain,
an axpy component, ...), derived from the nonzero pattern of a sparse square
matrix ``A`` of size ``N`` and density ``q``.  Four kernels are provided:

* :func:`spmv_dag`   — one sparse matrix-vector multiplication ``A @ u``,
* :func:`exp_dag`    — iterated matrix-vector multiplication ``A^k @ u``,
* :func:`cg_dag`     — ``k`` iterations of the conjugate gradient method,
* :func:`knn_dag`    — ``k``-hop reachability (sparse vector iterated spmv).

Weight rules follow the paper: source nodes have work weight 1, every other
node has work weight ``indegree - 1`` (the number of binary operations needed
to combine its inputs), and all communication weights are 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .dag import ComputationalDAG
from .random import random_sparse_pattern

__all__ = [
    "spmv_dag",
    "exp_dag",
    "cg_dag",
    "knn_dag",
    "FINE_GRAINED_GENERATORS",
    "generate_fine_grained",
]


class _DagBuilder:
    """Incremental builder applying the paper's weight rules."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.edges: List[Tuple[int, int]] = []
        self.parents: List[List[int]] = []

    def add_node(self, parents: Sequence[int] = ()) -> int:
        v = len(self.parents)
        plist = list(dict.fromkeys(int(p) for p in parents))
        self.parents.append(plist)
        for p in plist:
            self.edges.append((p, v))
        return v

    def build(self) -> ComputationalDAG:
        n = len(self.parents)
        work = np.ones(n, dtype=np.int64)
        for v, plist in enumerate(self.parents):
            if plist:
                work[v] = max(1, len(plist) - 1)
        comm = np.ones(n, dtype=np.int64)
        return ComputationalDAG(n, self.edges, work, comm, name=self.name)


def _resolve_pattern(
    n: int, q: float, seed: Optional[int], pattern: Optional[List[List[int]]]
) -> List[List[int]]:
    if pattern is not None:
        return pattern
    return random_sparse_pattern(n, q, seed=seed)


# ----------------------------------------------------------------------
# spmv: y = A @ u
# ----------------------------------------------------------------------
def spmv_dag(
    n: int,
    q: float = 0.25,
    seed: Optional[int] = None,
    pattern: Optional[List[List[int]]] = None,
    name: Optional[str] = None,
) -> ComputationalDAG:
    """Fine-grained DAG of one sparse matrix-vector multiplication.

    Sources are the nonzero matrix entries ``A[i, j]`` and the vector entries
    ``u[j]``; every nonzero produces a product node ``A[i, j] * u[j]`` and
    every row with at least one nonzero produces a row-sum node.  The longest
    path therefore has three nodes, matching the paper's "shallow" spmv DAGs.
    """
    rows = _resolve_pattern(n, q, seed, pattern)
    b = _DagBuilder(name or f"spmv_n{n}")
    a_nodes: Dict[Tuple[int, int], int] = {}
    used_cols = sorted({j for row in rows for j in row})
    u_nodes: Dict[int, int] = {j: b.add_node() for j in used_cols}
    for i, row in enumerate(rows):
        for j in row:
            a_nodes[(i, j)] = b.add_node()
    for i, row in enumerate(rows):
        if not row:
            continue
        prods = [b.add_node([a_nodes[(i, j)], u_nodes[j]]) for j in row]
        b.add_node(prods)
    return b.build()


# ----------------------------------------------------------------------
# exp: y = A^k @ u  (k repeated dense-vector spmv steps)
# ----------------------------------------------------------------------
def exp_dag(
    n: int,
    k: int = 2,
    q: float = 0.25,
    seed: Optional[int] = None,
    pattern: Optional[List[List[int]]] = None,
    name: Optional[str] = None,
) -> ComputationalDAG:
    """Fine-grained DAG of the iterated matrix-vector product ``A^k @ u``.

    The matrix entry nodes are created once and reused by every iteration;
    the output vector of iteration ``t`` is the input vector of iteration
    ``t + 1``, which makes the DAG ``k`` times deeper than a single spmv.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rows = _resolve_pattern(n, q, seed, pattern)
    b = _DagBuilder(name or f"exp_n{n}_k{k}")
    u_nodes: Dict[int, int] = {j: b.add_node() for j in range(n)}
    a_nodes: Dict[Tuple[int, int], int] = {}
    for i, row in enumerate(rows):
        for j in row:
            a_nodes[(i, j)] = b.add_node()
    current = dict(u_nodes)
    for _ in range(k):
        nxt: Dict[int, int] = {}
        for i, row in enumerate(rows):
            cols = [j for j in row if j in current]
            if not cols:
                continue
            prods = [b.add_node([a_nodes[(i, j)], current[j]]) for j in cols]
            nxt[i] = b.add_node(prods)
        if not nxt:
            break
        current = nxt
    return b.build()


# ----------------------------------------------------------------------
# kNN: k-hop reachability (sparse input vector)
# ----------------------------------------------------------------------
def knn_dag(
    n: int,
    k: int = 3,
    q: float = 0.25,
    seed: Optional[int] = None,
    pattern: Optional[List[List[int]]] = None,
    source_index: int = 0,
    name: Optional[str] = None,
) -> ComputationalDAG:
    """Fine-grained DAG of ``k``-hop reachability from a single source.

    This is the paper's GraphBLAS-style kNN: an iterated spmv in which the
    input vector has a single nonzero, and sparsity propagates — only the
    rows reachable so far produce nodes in each iteration.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rows = _resolve_pattern(n, q, seed, pattern)
    b = _DagBuilder(name or f"knn_n{n}_k{k}")
    a_nodes: Dict[Tuple[int, int], int] = {}
    for i, row in enumerate(rows):
        for j in row:
            a_nodes[(i, j)] = b.add_node()
    current: Dict[int, int] = {int(source_index) % max(n, 1): b.add_node()}
    for _ in range(k):
        nxt: Dict[int, int] = {}
        for i, row in enumerate(rows):
            cols = [j for j in row if j in current]
            if not cols:
                continue
            prods = [b.add_node([a_nodes[(i, j)], current[j]]) for j in cols]
            nxt[i] = b.add_node(prods)
        if not nxt:
            break
        current = nxt
    dag = b.build()
    # The single-source iteration may leave unused matrix-entry nodes
    # isolated; keep only the largest weakly connected component like the
    # paper does for extracted DAGs.
    dag, _ = dag.largest_weakly_connected_component()
    dag.name = name or f"knn_n{n}_k{k}"
    return dag


# ----------------------------------------------------------------------
# CG: k iterations of the conjugate gradient method
# ----------------------------------------------------------------------
def cg_dag(
    n: int,
    k: int = 2,
    q: float = 0.25,
    seed: Optional[int] = None,
    pattern: Optional[List[List[int]]] = None,
    name: Optional[str] = None,
) -> ComputationalDAG:
    """Fine-grained DAG of ``k`` conjugate gradient iterations.

    Per iteration the classical CG recurrences are expanded to scalar
    granularity: the spmv ``q = A p``, the two dot products, the scalar
    alpha/beta updates and the three vector updates (x, r, p).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rows = _resolve_pattern(n, q, seed, pattern)
    b = _DagBuilder(name or f"cg_n{n}_k{k}")
    a_nodes: Dict[Tuple[int, int], int] = {}
    for i, row in enumerate(rows):
        for j in row:
            a_nodes[(i, j)] = b.add_node()
    x = [b.add_node() for _ in range(n)]
    r = [b.add_node() for _ in range(n)]
    p = [b.add_node() for _ in range(n)]
    dot_rr = b.add_node(r)

    for _ in range(k):
        # q = A p  (row-wise products + row sums)
        q_vec: List[int] = []
        for i, row in enumerate(rows):
            cols = row
            if not cols:
                q_vec.append(b.add_node([p[i]]))
                continue
            prods = [b.add_node([a_nodes[(i, j)], p[j]]) for j in cols]
            q_vec.append(b.add_node(prods))
        # alpha = (r . r) / (p . q)
        dot_pq = b.add_node([node for pair in zip(p, q_vec) for node in pair])
        alpha = b.add_node([dot_rr, dot_pq])
        # x = x + alpha p ; r = r - alpha q
        x = [b.add_node([x[i], alpha, p[i]]) for i in range(n)]
        r = [b.add_node([r[i], alpha, q_vec[i]]) for i in range(n)]
        # beta = (r_new . r_new) / (r . r)
        dot_rr_new = b.add_node(r)
        beta = b.add_node([dot_rr_new, dot_rr])
        # p = r + beta p
        p = [b.add_node([r[i], beta, p[i]]) for i in range(n)]
        dot_rr = dot_rr_new
    return b.build()


FINE_GRAINED_GENERATORS = {
    "spmv": spmv_dag,
    "exp": exp_dag,
    "cg": cg_dag,
    "knn": knn_dag,
}
"""Name -> generator mapping for the four fine-grained kernels."""


def generate_fine_grained(kind: str, **kwargs) -> ComputationalDAG:
    """Dispatch by kernel name (``spmv``, ``exp``, ``cg`` or ``knn``)."""
    try:
        gen = FINE_GRAINED_GENERATORS[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown fine-grained kernel {kind!r}; expected one of "
            f"{sorted(FINE_GRAINED_GENERATORS)}"
        ) from exc
    return gen(**kwargs)
