"""Graphviz DOT export of computational DAGs and BSP schedules.

A release-quality scheduling library needs a way to *look* at its inputs and
outputs; this module renders a DAG (optionally colored by a schedule's
processor assignment and ranked by superstep) in the Graphviz DOT format,
which every common viewer understands.  Only the text format is produced —
no Graphviz installation is required.
"""

from __future__ import annotations

from typing import Optional

from .dag import ComputationalDAG

__all__ = ["dag_to_dot", "schedule_to_dot"]

#: Fill colors cycled over processors in schedule renderings.
_PALETTE = (
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
    "#e31a1c", "#ff7f00", "#6a3d9a", "#b15928",
)


def _node_label(dag: ComputationalDAG, v: int, show_weights: bool) -> str:
    if not show_weights:
        return str(v)
    return f"{v}\\nw={int(dag.work[v])} c={int(dag.comm[v])}"


def dag_to_dot(
    dag: ComputationalDAG,
    *,
    show_weights: bool = True,
    graph_name: Optional[str] = None,
) -> str:
    """Render a DAG as a DOT digraph (node labels show the w/c weights)."""
    name = graph_name or dag.name or "dag"
    lines = [f'digraph "{name}" {{', "  rankdir=TB;", '  node [shape=ellipse, fontsize=10];']
    for v in dag.nodes():
        lines.append(f'  {v} [label="{_node_label(dag, v, show_weights)}"];')
    for (u, v) in dag.edges:
        lines.append(f"  {u} -> {v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def schedule_to_dot(
    schedule,
    *,
    show_weights: bool = False,
    graph_name: Optional[str] = None,
) -> str:
    """Render a BSP schedule: nodes colored by processor, ranked by superstep.

    Every superstep becomes a ``same``-rank group labelled ``s<k>`` so that
    the layout reflects the superstep structure; cross-processor edges are
    drawn dashed (they correspond to communication).
    """
    dag: ComputationalDAG = schedule.dag
    name = graph_name or f"{dag.name}-schedule"
    lines = [
        f'digraph "{name}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontsize=10];',
    ]
    num_steps = schedule.num_supersteps
    for s in range(num_steps):
        nodes = schedule.nodes_in_superstep(s)
        if not nodes:
            continue
        lines.append(f"  subgraph cluster_step_{s} {{")
        lines.append(f'    label="superstep {s}"; color=gray; fontsize=10;')
        for v in nodes:
            p = int(schedule.proc[v])
            color = _PALETTE[p % len(_PALETTE)]
            label = _node_label(dag, v, show_weights) + f"\\np{p}"
            lines.append(f'    {v} [label="{label}", fillcolor="{color}"];')
        lines.append("  }")
    for (u, v) in dag.edges:
        style = "dashed" if schedule.proc[u] != schedule.proc[v] else "solid"
        lines.append(f'  {u} -> {v} [style={style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
