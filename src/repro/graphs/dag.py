"""Computational DAG data structure.

The DAG is the central input object of the scheduling problem (paper Section
3.1): nodes are operations, directed edges are data dependencies, and every
node ``v`` carries a *work weight* ``w(v)`` (time to execute ``v``) and a
*communication weight* ``c(v)`` (cost of sending the output of ``v`` to
another processor).

The class is intentionally lightweight and index-based: nodes are the
integers ``0 .. n-1`` and the weights are numpy integer arrays.  The
canonical adjacency representation is a cached CSR (compressed sparse row)
pair of numpy arrays per direction — ``succ_indptr``/``succ_indices`` and
``pred_indptr``/``pred_indices`` — kept redundantly alongside plain python
lists so that both vectorized kernels (local search, cost evaluation) and
simple per-node loops (generators, ILP construction) get constant-time
access to the structure they need.  All schedulers in this package operate
on this representation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["ComputationalDAG", "DagValidationError"]


class DagValidationError(ValueError):
    """Raised when a graph violates the DAG invariants (cycles, bad weights)."""


def _kahn_order(n: int, children: List[List[int]], parents: List[List[int]]) -> List[int]:
    """Topological order by Kahn's algorithm; shorter than ``n`` on a cycle."""
    indeg = [len(parents[v]) for v in range(n)]
    queue = deque(v for v in range(n) if indeg[v] == 0)
    order: List[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in children[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    return order


@dataclass
class ComputationalDAG:
    """A directed acyclic graph with per-node work and communication weights.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are identified by the integers ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs meaning "``u`` must finish before ``v``
        starts" (the output of ``u`` is an input of ``v``).
    work:
        Work weights ``w(v)``; defaults to 1 for every node.
    comm:
        Communication weights ``c(v)``; defaults to 1 for every node.
    name:
        Optional human readable name (used in experiment reports).
    memory:
        Memory weights ``m(v)`` used by the memory-constrained model
        variant (the footprint of ``v``'s data on the processor computing
        it); defaults to the work weights, the proxy the paper's
        memory-constrained experiments use.
    """

    n: int
    edges: Sequence[Tuple[int, int]] = field(default_factory=list)
    work: Optional[Sequence[int]] = None
    comm: Optional[Sequence[int]] = None
    name: str = "dag"
    memory: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise DagValidationError("number of nodes must be non-negative")
        self._assign_edges(self.edges)

        if self.work is None:
            self.work = np.ones(self.n, dtype=np.int64)
        else:
            self.work = np.asarray(self.work, dtype=np.int64).copy()
        if self.comm is None:
            self.comm = np.ones(self.n, dtype=np.int64)
        else:
            self.comm = np.asarray(self.comm, dtype=np.int64).copy()
        if self.memory is None:
            self.memory = np.asarray(self.work, dtype=np.int64).copy()
        else:
            self.memory = np.asarray(self.memory, dtype=np.int64).copy()
        if len(self.work) != self.n or len(self.comm) != self.n or len(self.memory) != self.n:
            raise DagValidationError("weight arrays must have length n")
        if np.any(self.work < 0) or np.any(self.comm < 0) or np.any(self.memory < 0):
            raise DagValidationError("node weights must be non-negative")

        # From here on, replacing ``edges`` rebuilds the whole structure
        # (see __setattr__), so a stale adjacency or CSR view is impossible.
        self._edges_hooked = True

    def _assign_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """(Re)build adjacency from an edge iterable and re-validate.

        Called from ``__post_init__`` and whenever the ``edges`` attribute is
        replaced: deduplicates and sorts the edges into an immutable tuple,
        rebuilds the ``_children``/``_parents`` lists, drops the derived
        caches and eagerly re-checks acyclicity.
        """
        children: List[List[int]] = [[] for _ in range(self.n)]
        parents: List[List[int]] = [[] for _ in range(self.n)]
        edge_set: Set[Tuple[int, int]] = set()
        for (u, v) in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise DagValidationError(f"edge ({u}, {v}) out of range for n={self.n}")
            if u == v:
                raise DagValidationError(f"self-loop on node {u}")
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            children[u].append(v)
            parents[v].append(u)
        # Validate acyclicity on the locally built adjacency BEFORE anything
        # is committed, so a rejected reassignment leaves the DAG unchanged.
        order = _kahn_order(self.n, children, parents)
        if len(order) != self.n:
            raise DagValidationError("graph contains a directed cycle")
        # A tuple, assigned behind __setattr__'s back: in-place mutation is
        # impossible and replacement re-enters this method.
        object.__setattr__(self, "edges", tuple(sorted(edge_set)))
        self._children: List[List[int]] = children
        self._parents: List[List[int]] = parents
        self._topo_cache: Optional[List[int]] = order
        self._csr_cache: Optional[Tuple[np.ndarray, ...]] = None

    def __setattr__(self, name: str, value: object) -> None:
        if name == "edges" and getattr(self, "_edges_hooked", False):
            # Replacing the edge list is the one supported structural
            # mutation: rebuild adjacency, caches and validity eagerly so no
            # accessor can ever observe a stale view.
            self._assign_edges(value)
            return
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of (deduplicated) edges."""
        return len(self.edges)

    def nodes(self) -> range:
        """Iterate over node identifiers ``0..n-1``."""
        return range(self.n)

    def children(self, v: int) -> List[int]:
        """Direct successors of ``v`` (nodes that consume its output)."""
        return self._children[v]

    def parents(self, v: int) -> List[int]:
        """Direct predecessors of ``v`` (nodes whose output ``v`` consumes)."""
        return self._parents[v]

    # `successors`/`predecessors` aliases follow networkx naming.
    successors = children
    predecessors = parents

    def out_degree(self, v: int) -> int:
        return len(self._children[v])

    def in_degree(self, v: int) -> int:
        return len(self._parents[v])

    def sources(self) -> List[int]:
        """Nodes with no predecessors."""
        return [v for v in range(self.n) if not self._parents[v]]

    def sinks(self) -> List[int]:
        """Nodes with no successors."""
        return [v for v in range(self.n) if not self._children[v]]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._children[u]

    def total_work(self) -> int:
        """Sum of all work weights."""
        return int(np.sum(self.work))

    def total_comm(self) -> int:
        """Sum of all communication weights."""
        return int(np.sum(self.comm))

    def total_memory(self) -> int:
        """Sum of all memory weights."""
        return int(np.sum(self.memory))

    # ------------------------------------------------------------------
    # Cache handling
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        """Drop the cached topological order and CSR arrays.

        The structure is documented as immutable and the one supported
        mutation — replacing ``edges`` — already rebuilds everything through
        ``__setattr__``, so nothing in this module calls this after
        construction; it exists for any future helper that mutates the
        adjacency *in place* (which MUST call it so the accessors rebuild
        instead of silently serving stale arrays).
        """
        self._topo_cache = None
        self._csr_cache = None

    # ------------------------------------------------------------------
    # CSR adjacency (the canonical array representation)
    # ------------------------------------------------------------------
    def _build_csr(self) -> Tuple[np.ndarray, ...]:
        if self._csr_cache is None:
            m = len(self.edges)
            edge_u = np.fromiter((e[0] for e in self.edges), dtype=np.int64, count=m)
            edge_v = np.fromiter((e[1] for e in self.edges), dtype=np.int64, count=m)
            succ_indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(np.bincount(edge_u, minlength=self.n), out=succ_indptr[1:])
            # ``edges`` is sorted by (u, v), so the target column already is
            # the successor index array; predecessors need a stable sort by v.
            succ_indices = edge_v
            pred_indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(np.bincount(edge_v, minlength=self.n), out=pred_indptr[1:])
            pred_indices = edge_u[np.argsort(edge_v, kind="stable")]
            self._csr_cache = (
                succ_indptr, succ_indices, pred_indptr, pred_indices, edge_u, edge_v,
            )
        return self._csr_cache

    @property
    def succ_indptr(self) -> np.ndarray:
        """CSR row pointers of the successor adjacency (length ``n + 1``)."""
        return self._build_csr()[0]

    @property
    def succ_indices(self) -> np.ndarray:
        """CSR column indices of the successor adjacency (length ``m``)."""
        return self._build_csr()[1]

    @property
    def pred_indptr(self) -> np.ndarray:
        """CSR row pointers of the predecessor adjacency (length ``n + 1``)."""
        return self._build_csr()[2]

    @property
    def pred_indices(self) -> np.ndarray:
        """CSR column indices of the predecessor adjacency (length ``m``)."""
        return self._build_csr()[3]

    @property
    def edge_sources(self) -> np.ndarray:
        """Source endpoint of every edge, aligned with :attr:`edge_targets`."""
        return self._build_csr()[4]

    @property
    def edge_targets(self) -> np.ndarray:
        """Target endpoint of every edge, aligned with :attr:`edge_sources`."""
        return self._build_csr()[5]

    def successors_array(self, v: int) -> np.ndarray:
        """Direct successors of ``v`` as a numpy array view (CSR slice)."""
        indptr, indices = self._build_csr()[0], self._build_csr()[1]
        return indices[indptr[v]:indptr[v + 1]]

    def predecessors_array(self, v: int) -> np.ndarray:
        """Direct predecessors of ``v`` as a numpy array view (CSR slice)."""
        csr = self._build_csr()
        return csr[3][csr[2][v]:csr[2][v + 1]]

    # ------------------------------------------------------------------
    # Orderings and structural queries
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """A topological ordering of the nodes (Kahn's algorithm).

        Raises :class:`DagValidationError` if the graph contains a cycle.
        The result is cached because the structure is immutable.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order = _kahn_order(self.n, self._children, self._parents)
        if len(order) != self.n:
            raise DagValidationError("graph contains a directed cycle")
        self._topo_cache = order
        return list(order)

    def node_levels(self) -> np.ndarray:
        """Level (longest edge-count distance from any source) for each node.

        Computed wavefront-by-wavefront on the CSR adjacency: a node's level
        is the index of the wave in which its last predecessor completes.
        """
        levels = np.zeros(self.n, dtype=np.int64)
        if self.n == 0 or self.num_edges == 0:
            return levels
        indptr, indices = self.succ_indptr, self.succ_indices
        indeg = np.diff(self.pred_indptr).copy()
        frontier = np.nonzero(indeg == 0)[0]
        level = 0
        while frontier.size:
            levels[frontier] = level
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather the concatenated successor lists of the whole frontier.
            offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            succ = indices[np.arange(total, dtype=np.int64) + offsets]
            np.subtract.at(indeg, succ, 1)
            ready = np.unique(succ)
            frontier = ready[indeg[ready] == 0]
            level += 1
        return levels

    def depth(self) -> int:
        """Number of levels on the longest path (1 for a single node, 0 if empty)."""
        if self.n == 0:
            return 0
        return int(self.node_levels().max()) + 1

    def level_sets(self) -> List[List[int]]:
        """Nodes grouped by :meth:`node_levels` (the DAG "wavefronts")."""
        if self.n == 0:
            return []
        levels = self.node_levels()
        order = np.argsort(levels, kind="stable")
        bounds = np.searchsorted(levels[order], np.arange(int(levels.max()) + 2))
        return [order[bounds[k]:bounds[k + 1]].tolist() for k in range(len(bounds) - 1)]

    def bottom_level(self) -> np.ndarray:
        """Bottom level of each node: the maximum total work on any path
        starting at the node (including the node itself).

        This is the classical list-scheduling priority used by BL-EST.
        """
        bl = np.array(self.work, dtype=np.int64).copy()
        if self.num_edges == 0:
            return bl
        # Relax all edges one source-level at a time (deepest sources first):
        # within a level no edge connects two sources, so a vectorized
        # scatter-max per level is exact.
        eu, ev = self.edge_sources, self.edge_targets
        src_level = self.node_levels()[eu]
        order = np.argsort(src_level, kind="stable")
        eu, ev, src_level = eu[order], ev[order], src_level[order]
        bounds = np.searchsorted(src_level, np.arange(int(src_level.max()) + 2))
        best = np.full(self.n, -1, dtype=np.int64)
        for k in range(len(bounds) - 2, -1, -1):
            lo, hi = bounds[k], bounds[k + 1]
            if lo == hi:
                continue
            us = eu[lo:hi]
            np.maximum.at(best, us, bl[ev[lo:hi]])
            touched = np.unique(us)
            bl[touched] = self.work[touched] + best[touched]
            best[touched] = -1
        return bl

    def top_level(self) -> np.ndarray:
        """Top level of each node: maximum total work on any path ending at
        the node, excluding the node itself."""
        tl = np.zeros(self.n, dtype=np.int64)
        if self.num_edges == 0:
            return tl
        eu, ev = self.edge_sources, self.edge_targets
        dst_level = self.node_levels()[ev]
        order = np.argsort(dst_level, kind="stable")
        eu, ev, dst_level = eu[order], ev[order], dst_level[order]
        offset = int(dst_level.min())
        bounds = np.searchsorted(dst_level, np.arange(offset, int(dst_level.max()) + 2))
        work = np.asarray(self.work, dtype=np.int64)
        for k in range(len(bounds) - 1):
            lo, hi = bounds[k], bounds[k + 1]
            if lo == hi:
                continue
            np.maximum.at(tl, ev[lo:hi], tl[eu[lo:hi]] + work[eu[lo:hi]])
        return tl

    def critical_path_work(self) -> int:
        """Total work along the heaviest directed path."""
        if self.n == 0:
            return 0
        return int(self.bottom_level().max())

    def ancestors(self, v: int) -> Set[int]:
        """All nodes from which ``v`` is reachable (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(self._parents[v])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._parents[u])
        return seen

    def descendants(self, v: int) -> Set[int]:
        """All nodes reachable from ``v`` (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(self._children[v])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._children[u])
        return seen

    def has_path(self, u: int, v: int, *, skip_direct_edge: bool = False) -> bool:
        """Return True if there is a directed path from ``u`` to ``v``.

        With ``skip_direct_edge`` the direct edge ``(u, v)`` (if present) is
        ignored, which is exactly the query needed to decide whether an edge
        is contractable in the multilevel coarsening phase.
        """
        if u == v:
            return True
        stack: List[int] = []
        for w in self._children[u]:
            if skip_direct_edge and w == v:
                continue
            stack.append(w)
        seen: Set[int] = set()
        while stack:
            x = stack.pop()
            if x == v:
                return True
            if x in seen:
                continue
            seen.add(x)
            stack.extend(self._children[x])
        return False

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> Tuple["ComputationalDAG", Dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the new DAG and a mapping ``old node id -> new node id``.
        """
        keep = sorted(set(int(v) for v in nodes))
        mapping = {old: new for new, old in enumerate(keep)}
        edges = [
            (mapping[u], mapping[v])
            for (u, v) in self.edges
            if u in mapping and v in mapping
        ]
        work = [int(self.work[v]) for v in keep]
        comm = [int(self.comm[v]) for v in keep]
        memory = [int(self.memory[v]) for v in keep]
        sub = ComputationalDAG(
            len(keep), edges, work, comm, name=f"{self.name}-sub", memory=memory
        )
        return sub, mapping

    def largest_weakly_connected_component(self) -> Tuple["ComputationalDAG", Dict[int, int]]:
        """Induced subgraph on the largest weakly connected component.

        The paper keeps only the largest component of DAGs extracted from
        GraphBLAS runs (Appendix B.1); generators reuse this utility.
        """
        if self.n == 0:
            return self, {}
        comp = np.full(self.n, -1, dtype=np.int64)
        current = 0
        for start in range(self.n):
            if comp[start] != -1:
                continue
            queue = deque([start])
            comp[start] = current
            while queue:
                v = queue.popleft()
                for w in self._children[v] + self._parents[v]:
                    if comp[w] == -1:
                        comp[w] = current
                        queue.append(w)
            current += 1
        sizes = np.bincount(comp, minlength=current)
        best = int(np.argmax(sizes))
        return self.subgraph([v for v in range(self.n) if comp[v] == best])

    def weakly_connected_components(self) -> List[List[int]]:
        """All weakly connected components as lists of node ids."""
        seen = [False] * self.n
        comps: List[List[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            queue = deque([start])
            seen[start] = True
            comp = [start]
            while queue:
                v = queue.popleft()
                for w in self._children[v] + self._parents[v]:
                    if not seen[w]:
                        seen[w] = True
                        comp.append(w)
                        queue.append(w)
            comps.append(comp)
        return comps

    def reversed_dag(self) -> "ComputationalDAG":
        """The DAG with all edges reversed (weights unchanged)."""
        return ComputationalDAG(
            self.n,
            [(v, u) for (u, v) in self.edges],
            self.work,
            self.comm,
            name=f"{self.name}-rev",
            memory=self.memory,
        )

    def relabeled(self, order: Sequence[int]) -> "ComputationalDAG":
        """Return a copy where node ``order[i]`` becomes node ``i``."""
        if sorted(order) != list(range(self.n)):
            raise DagValidationError("relabeling must be a permutation of all nodes")
        pos = {old: new for new, old in enumerate(order)}
        edges = [(pos[u], pos[v]) for (u, v) in self.edges]
        work = [int(self.work[v]) for v in order]
        comm = [int(self.comm[v]) for v in order]
        memory = [int(self.memory[v]) for v in order]
        return ComputationalDAG(self.n, edges, work, comm, name=self.name, memory=memory)

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` with ``work``/``comm`` node attrs."""
        import networkx as nx

        g = nx.DiGraph()
        for v in range(self.n):
            g.add_node(
                v,
                work=int(self.work[v]),
                comm=int(self.comm[v]),
                memory=int(self.memory[v]),
            )
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_networkx(cls, g, name: str = "dag") -> "ComputationalDAG":
        """Build from a ``networkx.DiGraph``; nodes must be 0..n-1 or are relabeled."""
        import networkx as nx

        mapping = {node: i for i, node in enumerate(sorted(g.nodes()))}
        n = len(mapping)
        edges = [(mapping[u], mapping[v]) for (u, v) in g.edges()]
        work = [int(g.nodes[node].get("work", 1)) for node in sorted(g.nodes())]
        comm = [int(g.nodes[node].get("comm", 1)) for node in sorted(g.nodes())]
        memory = [
            int(g.nodes[node].get("memory", g.nodes[node].get("work", 1)))
            for node in sorted(g.nodes())
        ]
        return cls(n, edges, work, comm, name=name, memory=memory)

    # ------------------------------------------------------------------
    # Contraction (used by the multilevel coarsening phase)
    # ------------------------------------------------------------------
    def contract_edge(self, u: int, v: int) -> Tuple["ComputationalDAG", Dict[int, int]]:
        """Contract edge ``(u, v)`` into a single node.

        Work and communication weights of ``u`` and ``v`` are summed (paper
        Appendix A.5).  The caller is responsible for only contracting edges
        whose contraction preserves acyclicity; the constructor re-checks and
        raises if a cycle would be created.

        Returns the contracted DAG and a mapping ``old node -> new node``
        (both ``u`` and ``v`` map to the same new node).
        """
        if not self.has_edge(u, v):
            raise DagValidationError(f"({u}, {v}) is not an edge")
        mapping: Dict[int, int] = {}
        new_id = 0
        for x in range(self.n):
            if x == v:
                continue
            mapping[x] = new_id
            new_id += 1
        mapping[v] = mapping[u]

        n_new = self.n - 1
        edge_set: Set[Tuple[int, int]] = set()
        for (a, b) in self.edges:
            na, nb = mapping[a], mapping[b]
            if na != nb:
                edge_set.add((na, nb))
        work = np.zeros(n_new, dtype=np.int64)
        comm = np.zeros(n_new, dtype=np.int64)
        memory = np.zeros(n_new, dtype=np.int64)
        for x in range(self.n):
            work[mapping[x]] += self.work[x]
            comm[mapping[x]] += self.comm[x]
            memory[mapping[x]] += self.memory[x]
        dag = ComputationalDAG(
            n_new, sorted(edge_set), work, comm, name=self.name, memory=memory
        )
        return dag, mapping

    def is_edge_contractable(self, u: int, v: int) -> bool:
        """True if contracting ``(u, v)`` keeps the graph acyclic.

        An edge is contractable iff there is no *other* directed path from
        ``u`` to ``v`` besides the edge itself (paper Appendix A.5).
        """
        if not self.has_edge(u, v):
            return False
        return not self.has_path(u, v, skip_direct_edge=True)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ComputationalDAG(name={self.name!r}, n={self.n}, m={self.num_edges}, "
            f"total_work={self.total_work()}, total_comm={self.total_comm()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationalDAG):
            return NotImplemented
        return (
            self.n == other.n
            and list(self.edges) == list(other.edges)
            and np.array_equal(self.work, other.work)
            and np.array_equal(self.comm, other.comm)
            and np.array_equal(self.memory, other.memory)
        )

    def __hash__(self) -> int:  # dataclass with eq needs explicit hash opt-out
        return id(self)
