"""DAG statistics and workload characterization.

These helpers summarize the structural properties the paper uses to describe
its datasets ("wider" versus "deeper" DAGs, node/edge counts) and the
communication-to-computation ratio (CCR) discussed in Appendix A.5 for
deciding when the multilevel scheduler is expected to help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model.machine import BspMachine
from .dag import ComputationalDAG

__all__ = ["DagStatistics", "dag_statistics", "communication_to_computation_ratio"]


@dataclass(frozen=True)
class DagStatistics:
    """Summary statistics of a computational DAG."""

    name: str
    num_nodes: int
    num_edges: int
    num_sources: int
    num_sinks: int
    depth: int
    max_width: int
    avg_in_degree: float
    max_in_degree: int
    total_work: int
    total_comm: int
    critical_path_work: int
    ccr: float

    def as_dict(self) -> dict:
        """Plain-dict view (handy for tabular reports)."""
        return {
            "name": self.name,
            "n": self.num_nodes,
            "m": self.num_edges,
            "sources": self.num_sources,
            "sinks": self.num_sinks,
            "depth": self.depth,
            "max_width": self.max_width,
            "avg_in_degree": round(self.avg_in_degree, 3),
            "max_in_degree": self.max_in_degree,
            "total_work": self.total_work,
            "total_comm": self.total_comm,
            "critical_path_work": self.critical_path_work,
            "ccr": round(self.ccr, 4),
        }


def dag_statistics(dag: ComputationalDAG) -> DagStatistics:
    """Compute :class:`DagStatistics` for a DAG."""
    level_sets = dag.level_sets()
    max_width = max((len(s) for s in level_sets), default=0)
    in_degrees = [dag.in_degree(v) for v in dag.nodes()]
    total_work = dag.total_work()
    total_comm = dag.total_comm()
    return DagStatistics(
        name=dag.name,
        num_nodes=dag.n,
        num_edges=dag.num_edges,
        num_sources=len(dag.sources()),
        num_sinks=len(dag.sinks()),
        depth=dag.depth(),
        max_width=max_width,
        avg_in_degree=float(np.mean(in_degrees)) if in_degrees else 0.0,
        max_in_degree=max(in_degrees, default=0),
        total_work=total_work,
        total_comm=total_comm,
        critical_path_work=dag.critical_path_work(),
        ccr=(total_comm / total_work) if total_work > 0 else 0.0,
    )


def communication_to_computation_ratio(
    dag: ComputationalDAG, machine: Optional[BspMachine] = None
) -> float:
    """Communication-to-computation ratio of a scheduling problem.

    Without a machine this is the plain ratio ``sum(c) / sum(w)`` used by
    Özkaya et al.; with a machine the numerator is additionally multiplied by
    ``g`` and by the average NUMA coefficient, the natural extension the
    paper sketches in Appendix A.5.  High values indicate
    communication-dominated problems where the multilevel scheduler is the
    better tool.
    """
    total_work = dag.total_work()
    if total_work == 0:
        return 0.0
    ratio = dag.total_comm() / total_work
    if machine is not None:
        avg_lambda = machine.average_coefficient()
        if avg_lambda == 0.0:
            avg_lambda = 1.0
        ratio *= machine.g * avg_lambda
    return float(ratio)
