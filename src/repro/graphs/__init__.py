"""Computational DAGs: data structure, generators, I/O and analysis."""

from .analysis import DagStatistics, communication_to_computation_ratio, dag_statistics
from .coarse import (
    COARSE_GRAINED_GENERATORS,
    coarse_bicgstab,
    coarse_conjugate_gradient,
    coarse_khop,
    coarse_kmeans,
    coarse_label_propagation,
    coarse_pagerank,
    generate_coarse_grained,
)
from .dag import ComputationalDAG, DagValidationError
from .dot import dag_to_dot, schedule_to_dot
from .fine import (
    FINE_GRAINED_GENERATORS,
    cg_dag,
    exp_dag,
    generate_fine_grained,
    knn_dag,
    spmv_dag,
)
from .hyperdag import (
    dag_to_hyperdag,
    dumps_hyperdag,
    hyperdag_to_dag,
    loads_hyperdag,
    read_hyperdag,
    write_hyperdag,
)
from .random import banded_pattern, erdos_renyi_dag, random_layered_dag, random_sparse_pattern

__all__ = [
    "dag_to_dot",
    "schedule_to_dot",
    "ComputationalDAG",
    "DagValidationError",
    "DagStatistics",
    "dag_statistics",
    "communication_to_computation_ratio",
    "spmv_dag",
    "exp_dag",
    "cg_dag",
    "knn_dag",
    "generate_fine_grained",
    "FINE_GRAINED_GENERATORS",
    "coarse_conjugate_gradient",
    "coarse_bicgstab",
    "coarse_pagerank",
    "coarse_label_propagation",
    "coarse_khop",
    "coarse_kmeans",
    "generate_coarse_grained",
    "COARSE_GRAINED_GENERATORS",
    "dag_to_hyperdag",
    "hyperdag_to_dag",
    "dumps_hyperdag",
    "loads_hyperdag",
    "read_hyperdag",
    "write_hyperdag",
    "random_sparse_pattern",
    "banded_pattern",
    "random_layered_dag",
    "erdos_renyi_dag",
]
