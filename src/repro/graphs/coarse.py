"""Coarse-grained computational DAG generators.

The paper extracts coarse-grained DAGs from a GraphBLAS run: every matrix or
vector produced during the computation is a single node, and the operator
dependencies between them are the edges (paper Section 5 / Appendix B.1).
GraphBLAS itself is not reproducible offline, so this module generates the
same operator-level DAGs *directly from the algorithm structure* of the
iterative methods the paper lists (conjugate gradient, BiCGStab, PageRank,
label propagation, k-NN / k-hop reachability, k-means).

Weight rules match the paper's extraction: ``w(v) = indegree(v) - 1`` (and 1
for source nodes), ``c(v) = 1`` for every node.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dag import ComputationalDAG

__all__ = [
    "coarse_conjugate_gradient",
    "coarse_bicgstab",
    "coarse_pagerank",
    "coarse_label_propagation",
    "coarse_khop",
    "coarse_kmeans",
    "COARSE_GRAINED_GENERATORS",
    "generate_coarse_grained",
]


class _OpDagBuilder:
    """Operator-level DAG builder with the paper's weight rules."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.edges: List[Tuple[int, int]] = []
        self.parents: List[List[int]] = []
        self.labels: List[str] = []

    def op(self, label: str, parents: Sequence[int] = ()) -> int:
        v = len(self.parents)
        plist = list(dict.fromkeys(int(p) for p in parents))
        self.parents.append(plist)
        self.labels.append(label)
        for p in plist:
            self.edges.append((p, v))
        return v

    def build(self) -> ComputationalDAG:
        n = len(self.parents)
        work = np.ones(n, dtype=np.int64)
        for v, plist in enumerate(self.parents):
            if plist:
                work[v] = max(1, len(plist) - 1)
        comm = np.ones(n, dtype=np.int64)
        return ComputationalDAG(n, self.edges, work, comm, name=self.name)


def coarse_conjugate_gradient(iterations: int = 3, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of ``iterations`` conjugate gradient steps.

    Each iteration contributes the spmv, two dot products, the scalar
    updates and three axpy operations, exactly the containers a GraphBLAS
    run materializes.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    b = _OpDagBuilder(name or f"coarse_cg_it{iterations}")
    A = b.op("A")
    x = b.op("x0")
    bvec = b.op("b")
    ax = b.op("A@x0", [A, x])
    r = b.op("r0", [bvec, ax])
    p = b.op("p0", [r])
    rr = b.op("dot(r,r)", [r])
    for t in range(iterations):
        q = b.op(f"q{t}=A@p", [A, p])
        pq = b.op(f"dot(p,q){t}", [p, q])
        alpha = b.op(f"alpha{t}", [rr, pq])
        x = b.op(f"x{t + 1}", [x, alpha, p])
        r = b.op(f"r{t + 1}", [r, alpha, q])
        rr_new = b.op(f"dot(r,r){t + 1}", [r])
        beta = b.op(f"beta{t}", [rr_new, rr])
        p = b.op(f"p{t + 1}", [r, beta, p])
        rr = rr_new
    return b.build()


def coarse_bicgstab(iterations: int = 3, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of the BiCGStab method for general linear systems."""
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    b = _OpDagBuilder(name or f"coarse_bicgstab_it{iterations}")
    A = b.op("A")
    x = b.op("x0")
    bvec = b.op("b")
    ax = b.op("A@x0", [A, x])
    r = b.op("r0", [bvec, ax])
    rhat = b.op("rhat", [r])
    rho = b.op("rho0", [rhat, r])
    p = b.op("p0", [r])
    for t in range(iterations):
        v = b.op(f"v{t}=A@p", [A, p])
        alpha = b.op(f"alpha{t}", [rho, rhat, v])
        s = b.op(f"s{t}", [r, alpha, v])
        tvec = b.op(f"t{t}=A@s", [A, s])
        omega = b.op(f"omega{t}", [tvec, s])
        x = b.op(f"x{t + 1}", [x, alpha, p, omega, s])
        r = b.op(f"r{t + 1}", [s, omega, tvec])
        rho_new = b.op(f"rho{t + 1}", [rhat, r])
        beta = b.op(f"beta{t}", [rho_new, rho, alpha, omega])
        p = b.op(f"p{t + 1}", [r, beta, p, omega, v])
        rho = rho_new
    return b.build()


def coarse_pagerank(iterations: int = 5, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of ``iterations`` PageRank power iterations."""
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    b = _OpDagBuilder(name or f"coarse_pagerank_it{iterations}")
    A = b.op("A")
    d = b.op("outdegree", [A])
    rank = b.op("rank0")
    teleport = b.op("teleport")
    for t in range(iterations):
        scaled = b.op(f"scaled{t}", [rank, d])
        spread = b.op(f"A@scaled{t}", [A, scaled])
        damped = b.op(f"damped{t}", [spread, teleport])
        norm = b.op(f"norm{t}", [damped])
        rank = b.op(f"rank{t + 1}", [damped, norm])
    return b.build()


def coarse_label_propagation(iterations: int = 5, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of iterative label propagation on a graph."""
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    b = _OpDagBuilder(name or f"coarse_labelprop_it{iterations}")
    A = b.op("A")
    labels = b.op("labels0")
    for t in range(iterations):
        gathered = b.op(f"gather{t}", [A, labels])
        argmax = b.op(f"argmax{t}", [gathered])
        changed = b.op(f"changed{t}", [argmax, labels])
        labels = b.op(f"labels{t + 1}", [argmax, changed])
    return b.build()


def coarse_khop(iterations: int = 4, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of k-hop reachability (GraphBLAS-style kNN)."""
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    b = _OpDagBuilder(name or f"coarse_khop_it{iterations}")
    A = b.op("A")
    frontier = b.op("frontier0")
    visited = b.op("visited0", [frontier])
    for t in range(iterations):
        nxt = b.op(f"A@frontier{t}", [A, frontier])
        frontier = b.op(f"frontier{t + 1}", [nxt, visited])
        visited = b.op(f"visited{t + 1}", [visited, frontier])
    return b.build()


def coarse_kmeans(iterations: int = 4, clusters: int = 4, name: Optional[str] = None) -> ComputationalDAG:
    """Operator DAG of Lloyd's k-means: per iteration an assignment step and
    one centroid update per cluster."""
    if iterations < 1 or clusters < 1:
        raise ValueError("iterations and clusters must be at least 1")
    b = _OpDagBuilder(name or f"coarse_kmeans_it{iterations}_k{clusters}")
    data = b.op("data")
    centroids = [b.op(f"c0_{j}") for j in range(clusters)]
    for t in range(iterations):
        dists = [b.op(f"dist{t}_{j}", [data, centroids[j]]) for j in range(clusters)]
        assign = b.op(f"assign{t}", dists)
        centroids = [b.op(f"c{t + 1}_{j}", [data, assign]) for j in range(clusters)]
    return b.build()


COARSE_GRAINED_GENERATORS = {
    "cg": coarse_conjugate_gradient,
    "bicgstab": coarse_bicgstab,
    "pagerank": coarse_pagerank,
    "label_propagation": coarse_label_propagation,
    "khop": coarse_khop,
    "kmeans": coarse_kmeans,
}
"""Name -> generator mapping for the coarse-grained operator DAGs."""


def generate_coarse_grained(kind: str, **kwargs) -> ComputationalDAG:
    """Dispatch by algorithm name (see :data:`COARSE_GRAINED_GENERATORS`)."""
    try:
        gen = COARSE_GRAINED_GENERATORS[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown coarse-grained generator {kind!r}; expected one of "
            f"{sorted(COARSE_GRAINED_GENERATORS)}"
        ) from exc
    return gen(**kwargs)
