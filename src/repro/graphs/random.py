"""Random structure generators: sparse matrix patterns and random DAGs.

The fine-grained DAG generators of the paper (Appendix B.2) construct the
computational DAG of an algebraic kernel from the *nonzero pattern* of a
random square matrix: each entry is nonzero independently with probability
``q``.  This module provides that pattern generator plus a couple of generic
random-DAG generators used for testing and for additional benchmark
workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .dag import ComputationalDAG

__all__ = [
    "random_sparse_pattern",
    "banded_pattern",
    "random_layered_dag",
    "erdos_renyi_dag",
]


def random_sparse_pattern(
    n: int, q: float, seed: Optional[int] = None, ensure_nonempty_rows: bool = True
) -> List[List[int]]:
    """Random ``n x n`` sparsity pattern: entry ``(i, j)`` present w.p. ``q``.

    Returns a list of rows, each row the sorted list of nonzero column
    indices.  With ``ensure_nonempty_rows`` every row is guaranteed at least
    one nonzero (the diagonal entry), which keeps the derived computational
    DAGs connected in the way the paper's generator does.
    """
    if not (0.0 <= q <= 1.0):
        raise ValueError("q must be a probability")
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < q
    if ensure_nonempty_rows:
        np.fill_diagonal(mask, True)
    return [sorted(np.flatnonzero(mask[i]).tolist()) for i in range(n)]


def banded_pattern(n: int, bandwidth: int = 1) -> List[List[int]]:
    """Deterministic banded sparsity pattern (diagonal plus ``bandwidth``
    off-diagonals on each side).  Useful for reproducible small examples."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    rows: List[List[int]] = []
    for i in range(n):
        lo = max(0, i - bandwidth)
        hi = min(n, i + bandwidth + 1)
        rows.append(list(range(lo, hi)))
    return rows


def random_layered_dag(
    num_layers: int,
    layer_width: int,
    edge_prob: float = 0.3,
    *,
    work_range: Tuple[int, int] = (1, 4),
    comm_range: Tuple[int, int] = (1, 3),
    seed: Optional[int] = None,
    name: str = "layered",
) -> ComputationalDAG:
    """Random layered DAG: nodes arranged in layers, edges only between
    consecutive layers (each pair present with probability ``edge_prob``).

    Every non-first-layer node receives at least one incoming edge so that
    the layer structure equals the level structure.
    """
    if num_layers <= 0 or layer_width <= 0:
        raise ValueError("num_layers and layer_width must be positive")
    rng = np.random.default_rng(seed)
    n = num_layers * layer_width
    edges: List[Tuple[int, int]] = []
    for layer in range(1, num_layers):
        prev = range((layer - 1) * layer_width, layer * layer_width)
        cur = range(layer * layer_width, (layer + 1) * layer_width)
        for v in cur:
            parents = [u for u in prev if rng.random() < edge_prob]
            if not parents:
                parents = [int(rng.choice(list(prev)))]
            for u in parents:
                edges.append((u, v))
    work = rng.integers(work_range[0], work_range[1] + 1, size=n)
    comm = rng.integers(comm_range[0], comm_range[1] + 1, size=n)
    return ComputationalDAG(n, edges, work, comm, name=name)


def erdos_renyi_dag(
    n: int,
    edge_prob: float = 0.1,
    *,
    work_range: Tuple[int, int] = (1, 4),
    comm_range: Tuple[int, int] = (1, 3),
    seed: Optional[int] = None,
    name: str = "gnp",
) -> ComputationalDAG:
    """Random DAG: orient a G(n, p) graph along a fixed node ordering."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_prob:
                edges.append((u, v))
    work = rng.integers(work_range[0], work_range[1] + 1, size=n) if n else []
    comm = rng.integers(comm_range[0], comm_range[1] + 1, size=n) if n else []
    return ComputationalDAG(n, edges, work, comm, name=name)
