"""repro — reproduction of "Efficient Multi-Processor Scheduling in
Increasingly Realistic Models" (Papp, Anegg, Karanasiou, Yzelman; SPAA 2024).

The package implements the paper's NUMA-extended BSP scheduling model, its
computational-DAG database generators, every baseline and every scheduling
algorithm of the proposed framework (initialization heuristics, hill-climbing
local search, ILP-based methods, the multilevel scheduler), and an experiment
harness that regenerates the paper's tables and figures.

Quick start (declarative API)::

    from repro import DagSpec, MachineSpec, ProblemSpec, SolveRequest, solve

    spec = ProblemSpec(
        dag=DagSpec.generator("spmv", n=30, q=0.2, seed=0),
        machine=MachineSpec(P=4, g=3, l=5),
    )
    print(solve(SolveRequest(spec=spec, scheduler="framework")).total_cost)

or imperatively::

    from repro import BspMachine, spmv_dag, run_pipeline
    from repro.baselines import CilkScheduler

    dag = spmv_dag(30, q=0.2, seed=0)
    machine = BspMachine(P=4, g=3, l=5)
    result = run_pipeline(dag, machine)
    print("ours:", result.final_cost, " cilk:", CilkScheduler().schedule(dag, machine).cost())
"""

from .graphs import (
    ComputationalDAG,
    cg_dag,
    coarse_conjugate_gradient,
    coarse_pagerank,
    dag_statistics,
    exp_dag,
    knn_dag,
    read_hyperdag,
    spmv_dag,
    write_hyperdag,
)
from .model import (
    BspMachine,
    BspSchedule,
    ClassicalSchedule,
    CommSchedule,
    CostBreakdown,
    classical_to_bsp,
    evaluate,
)
from .pipeline import (
    AdaptiveScheduler,
    FrameworkScheduler,
    MultilevelConfig,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
)
from .multilevel import MultilevelScheduler, multilevel_schedule
from .model import describe_schedule, schedule_to_text_gantt

# The facade imports the experiment engine, which reaches back through the
# pipeline/multilevel packages — keep this import after them so the package
# initialization order stays acyclic.
from .api import compare, solve, solve_many
from .portfolio import (
    InstanceFeatures,
    PortfolioScheduler,
    SolutionCache,
    extract_features,
    instance_signature,
)
from .registry import (
    SchedulerInfo,
    available_schedulers,
    make_scheduler,
    parse_scheduler_spec,
    register_scheduler,
    scheduler_info,
)
from .scheduler import Scheduler, SchedulingError
from .spec import (
    DagSpec,
    MachineSpec,
    ProblemSpec,
    SolveRequest,
    SolveResult,
    SpecError,
)

__version__ = "2.1.0"

__all__ = [
    "__version__",
    # declarative solve API
    "solve",
    "solve_many",
    "compare",
    "DagSpec",
    "MachineSpec",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
    "SpecError",
    # registry
    "SchedulerInfo",
    "register_scheduler",
    "scheduler_info",
    "parse_scheduler_spec",
    # graphs
    "ComputationalDAG",
    "spmv_dag",
    "exp_dag",
    "cg_dag",
    "knn_dag",
    "coarse_conjugate_gradient",
    "coarse_pagerank",
    "dag_statistics",
    "read_hyperdag",
    "write_hyperdag",
    # model
    "BspMachine",
    "BspSchedule",
    "CommSchedule",
    "CostBreakdown",
    "evaluate",
    "ClassicalSchedule",
    "classical_to_bsp",
    # scheduling
    "Scheduler",
    "SchedulingError",
    "PipelineConfig",
    "MultilevelConfig",
    "run_pipeline",
    "PipelineResult",
    "FrameworkScheduler",
    "AdaptiveScheduler",
    "MultilevelScheduler",
    "multilevel_schedule",
    "make_scheduler",
    "available_schedulers",
    "describe_schedule",
    "schedule_to_text_gantt",
    # portfolio scheduling & solution cache
    "InstanceFeatures",
    "PortfolioScheduler",
    "SolutionCache",
    "extract_features",
    "instance_signature",
]
