"""Trivial baselines: sequential execution and plain work-balancing.

The *trivial* scheduler assigns every node to processor 0 in superstep 0 —
a sequential execution with no communication and a single latency charge.
The paper uses it as the sanity bar in communication-dominated settings
(Section 7.3): a scheduler that cannot beat it has effectively failed to
parallelize the computation.
"""

from __future__ import annotations

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler

__all__ = ["TrivialScheduler", "LevelRoundRobinScheduler"]


class TrivialScheduler(Scheduler):
    """Everything on one processor in one superstep."""

    name = "Trivial"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return BspSchedule.trivial(dag, machine)


class LevelRoundRobinScheduler(Scheduler):
    """Naive reference scheduler: one superstep per DAG level, nodes assigned
    round-robin.

    Not part of the paper's comparison, but a useful, trivially-correct
    reference point for tests (it always yields a valid schedule) and for
    sanity-checking the cost model.
    """

    name = "LevelRR"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        proc = np.zeros(dag.n, dtype=np.int64)
        step = np.zeros(dag.n, dtype=np.int64)
        for level, nodes in enumerate(dag.level_sets()):
            for i, v in enumerate(nodes):
                proc[v] = i % machine.P
                step[v] = level
        return BspSchedule(dag, machine, proc, step)
