"""BL-EST and ETF list schedulers with communication volume.

These are the strongest classical list-scheduling baselines identified by
recent comparison studies and already extended with communication volume by
Özkaya et al.; the paper uses exactly those versions (Section 4.1, Appendix
A.1).  Both schedulers repeatedly pick a ready node and place it on the
processor offering the earliest start time (EST), where the EST accounts for
the time needed to transfer each predecessor's output across processors
(``g * c(u)``, multiplied by the *average* NUMA coefficient when NUMA
effects are present — the baselines are deliberately not NUMA-aware).

* **BL-EST** selects the ready node with the largest *bottom level* (longest
  outgoing path by work weight) and then the EST-minimizing processor.
* **ETF** (Earliest Task First) selects, among all (ready node, processor)
  pairs, the pair with the smallest EST; ties are broken by bottom level.

Both produce classical time-based schedules that are converted to BSP
supersteps with :func:`repro.model.classical.classical_to_bsp`.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.classical import ClassicalSchedule, classical_to_bsp
from ..model.machine import MEMORY_EPS as _EPS
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler, SchedulingError

__all__ = ["BlEstScheduler", "EtfScheduler", "list_schedule"]


def _comm_delay_factor(machine: BspMachine) -> float:
    """Per-unit communication delay the list schedulers assume.

    The classical extension uses ``g`` per unit of data; with NUMA effects
    the baselines multiply by the average pairwise coefficient (they have no
    notion of which pair of processors will actually communicate).
    """
    factor = float(machine.g)
    if not machine.is_uniform:
        factor *= machine.average_coefficient()
    elif machine.P > 1:
        factor *= 1.0
    return factor


def list_schedule(
    dag: ComputationalDAG,
    machine: BspMachine,
    policy: str = "bl-est",
    *,
    respect_memory: bool = False,
    prefer_memory_balance: bool = False,
) -> ClassicalSchedule:
    """Run the BL-EST or ETF list-scheduling policy.

    Parameters
    ----------
    policy:
        ``"bl-est"`` or ``"etf"``.
    respect_memory:
        With the machine carrying per-processor memory bounds, only place
        nodes on processors with enough remaining capacity (the
        memory-constrained ``greedy-mem`` variant); raises
        :class:`~repro.scheduler.SchedulingError` when no processor fits.
        Without bounds on the machine this is a no-op, so the variant
        degenerates to the plain baseline.
    prefer_memory_balance:
        Among the memory-feasible processors, prefer the one with the most
        remaining capacity (ties broken by EST) instead of the earliest
        start time.  Only meaningful together with ``respect_memory``.
    """
    if policy not in ("bl-est", "etf"):
        raise ValueError("policy must be 'bl-est' or 'etf'")
    n = dag.n
    P = machine.P
    proc = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ClassicalSchedule(dag, machine, proc, start)

    bounds = machine.memory_bounds if respect_memory else None
    remaining = bounds.astype(np.float64).copy() if bounds is not None else None
    memory = np.asarray(dag.memory, dtype=np.float64)

    delay = _comm_delay_factor(machine)
    bottom = dag.bottom_level()
    finish = np.zeros(n, dtype=np.float64)
    proc_ready = np.zeros(P, dtype=np.float64)
    remaining_parents = np.diff(dag.pred_indptr).copy()
    ready: Set[int] = set(np.nonzero(remaining_parents == 0)[0].tolist())
    placed = np.zeros(n, dtype=bool)
    comm = np.asarray(dag.comm, dtype=np.float64)

    def est(v: int, p: int) -> float:
        t = float(proc_ready[p])
        parents = dag.predecessors_array(v)
        if parents.size:
            arrival = finish[parents] + np.where(proc[parents] == p, 0.0, delay * comm[parents])
            t = max(t, float(arrival.max()))
        return t

    def feasible_processors(v: int) -> List[int]:
        if remaining is None:
            return list(range(P))
        fits = [p for p in range(P) if memory[v] <= remaining[p] + _EPS]
        if not fits:
            raise SchedulingError(
                f"no processor has {memory[v]:g} units of memory left for "
                f"node {v} (remaining: {np.round(remaining, 3).tolist()})"
            )
        return fits

    for _ in range(n):
        if not ready:
            raise RuntimeError("list scheduler ran out of ready nodes prematurely")
        if policy == "bl-est":
            # Highest bottom level first; break ties by node id for determinism.
            v = max(ready, key=lambda x: (bottom[x], -x))
            fits = feasible_processors(v)
            if prefer_memory_balance and remaining is not None:
                best_p = min(fits, key=lambda p: (-remaining[p], est(v, p), p))
            else:
                best_p = min(fits, key=lambda p: (est(v, p), p))
            best_t = est(v, best_p)
        else:  # ETF
            best: Optional[Tuple[float, float, int, int]] = None
            for v_cand in ready:
                for p in feasible_processors(v_cand):
                    t = est(v_cand, p)
                    key = (t, -float(bottom[v_cand]), v_cand, p)
                    if best is None or key < best:
                        best = key
            assert best is not None
            best_t, _, v, best_p = best
        ready.discard(v)
        placed[v] = True
        proc[v] = best_p
        start[v] = best_t
        finish[v] = best_t + float(dag.work[v])
        proc_ready[best_p] = finish[v]
        if remaining is not None:
            remaining[best_p] -= memory[v]
        for child in dag.children(v):
            remaining_parents[child] -= 1
            if remaining_parents[child] == 0:
                ready.add(child)

    return ClassicalSchedule(dag, machine, proc, start)


class BlEstScheduler(Scheduler):
    """Bottom-Level / Earliest-Start-Time list scheduler."""

    name = "BL-EST"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return classical_to_bsp(list_schedule(dag, machine, policy="bl-est"))


class EtfScheduler(Scheduler):
    """Earliest Task First list scheduler."""

    name = "ETF"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return classical_to_bsp(list_schedule(dag, machine, policy="etf"))
