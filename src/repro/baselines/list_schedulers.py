"""BL-EST and ETF list schedulers with communication volume.

These are the strongest classical list-scheduling baselines identified by
recent comparison studies and already extended with communication volume by
Özkaya et al.; the paper uses exactly those versions (Section 4.1, Appendix
A.1).  Both schedulers repeatedly pick a ready node and place it on the
processor offering the earliest start time (EST), where the EST accounts for
the time needed to transfer each predecessor's output across processors
(``g * c(u)``, multiplied by the *average* NUMA coefficient when NUMA
effects are present — the baselines are deliberately not NUMA-aware).

* **BL-EST** selects the ready node with the largest *bottom level* (longest
  outgoing path by work weight) and then the EST-minimizing processor.
* **ETF** (Earliest Task First) selects, among all (ready node, processor)
  pairs, the pair with the smallest EST; ties are broken by bottom level.

Both produce classical time-based schedules that are converted to BSP
supersteps with :func:`repro.model.classical.classical_to_bsp`.

The EST inner loop is batched: a ready node's per-processor *arrival* vector
(the EST contribution of its predecessors) is fixed the moment the node
becomes ready — every predecessor is already placed — so it is computed once
and stored in a dense ``(ready, P)`` pool, and each iteration's full EST
table is a single ``np.maximum(arrival_pool, proc_ready)`` instead of
``|ready| * P`` python-level predecessor scans.  Selection keys are total
orders evaluated with exact float comparisons, so the vectorized scheduler
is tie-for-tie identical to the reference loop
(:func:`_list_schedule_reference`, kept for the equivalence tests).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.classical import ClassicalSchedule, classical_to_bsp
from ..model.machine import MEMORY_EPS as _EPS
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler, SchedulingError

__all__ = ["BlEstScheduler", "EtfScheduler", "list_schedule"]


def _comm_delay_factor(machine: BspMachine) -> float:
    """Per-unit communication delay the list schedulers assume.

    The classical extension uses ``g`` per unit of data; with NUMA effects
    the baselines multiply by the average pairwise coefficient (they have no
    notion of which pair of processors will actually communicate).
    """
    factor = float(machine.g)
    if not machine.is_uniform:
        factor *= machine.average_coefficient()
    return factor


def _no_memory_fit(v: int, need: float, remaining: np.ndarray) -> SchedulingError:
    return SchedulingError(
        f"no processor has {need:g} units of memory left for "
        f"node {v} (remaining: {np.round(remaining, 3).tolist()})"
    )


def list_schedule(
    dag: ComputationalDAG,
    machine: BspMachine,
    policy: str = "bl-est",
    *,
    respect_memory: bool = False,
    prefer_memory_balance: bool = False,
) -> ClassicalSchedule:
    """Run the BL-EST or ETF list-scheduling policy.

    Parameters
    ----------
    policy:
        ``"bl-est"`` or ``"etf"``.
    respect_memory:
        With the machine carrying per-processor memory bounds, only place
        nodes on processors with enough remaining capacity (the
        memory-constrained ``greedy-mem`` variant); raises
        :class:`~repro.scheduler.SchedulingError` when no processor fits.
        Without bounds on the machine this is a no-op, so the variant
        degenerates to the plain baseline.
    prefer_memory_balance:
        Among the memory-feasible processors, prefer the one with the most
        remaining capacity (ties broken by EST) instead of the earliest
        start time.  Only meaningful together with ``respect_memory``.
    """
    if policy not in ("bl-est", "etf"):
        raise ValueError("policy must be 'bl-est' or 'etf'")
    n = dag.n
    P = machine.P
    proc = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ClassicalSchedule(dag, machine, proc, start)

    bounds = machine.memory_bounds if respect_memory else None
    remaining = bounds.astype(np.float64).copy() if bounds is not None else None
    memory = np.asarray(dag.memory, dtype=np.float64)

    delay = _comm_delay_factor(machine)
    bottom = dag.bottom_level()
    finish = np.zeros(n, dtype=np.float64)
    proc_ready = np.zeros(P, dtype=np.float64)
    remaining_parents = np.diff(dag.pred_indptr).copy()
    comm = np.asarray(dag.comm, dtype=np.float64)
    work = np.asarray(dag.work, dtype=np.float64)

    # Ready pool: slot i of `arrival` holds the per-processor arrival vector
    # of ready node `slot_node[i]` — max over its (already placed) parents of
    # finish (same processor) / finish + delay * comm (cross-processor).
    # Placement swap-removes the slot, so the live block is `arrival[:nready]`.
    arrival = np.zeros((n, P), dtype=np.float64)
    slot_node = np.zeros(n, dtype=np.int64)
    nready = 0

    def push_ready(v: int) -> None:
        nonlocal nready
        parents = dag.predecessors_array(v)
        row = arrival[nready]
        if parents.size == 0:
            row[:] = 0.0
        else:
            f = finish[parents]
            base = f + delay * comm[parents]
            row[:] = base.max()
            pp = proc[parents]
            # A processor hosting parents gets their bare finish times; the
            # cross-processor max must then exclude those parents' base terms.
            for p in sorted(set(pp.tolist())):
                on = pp == p
                m = float(f[on].max())
                off = base[~on]
                if off.size:
                    m = max(m, float(off.max()))
                row[p] = m
        slot_node[nready] = v
        nready += 1

    def pop_ready(i: int) -> None:
        nonlocal nready
        last = nready - 1
        if i != last:
            arrival[i] = arrival[last]
            slot_node[i] = slot_node[last]
        nready -= 1

    for v in np.nonzero(remaining_parents == 0)[0].tolist():
        push_ready(v)

    for _ in range(n):
        if nready == 0:
            raise RuntimeError("list scheduler ran out of ready nodes prematurely")
        nodes = slot_node[:nready]
        if policy == "bl-est":
            # Highest bottom level first; break ties by node id for determinism.
            b = bottom[nodes]
            tie = np.nonzero(b == b.max())[0]
            i = int(tie[np.argmin(nodes[tie])])
            v = int(slot_node[i])
            row = np.maximum(arrival[i], proc_ready)
            if remaining is None:
                best_p = int(np.argmin(row))
            else:
                fit_row = memory[v] <= remaining + _EPS
                if not fit_row.any():
                    raise _no_memory_fit(v, memory[v], remaining)
                if prefer_memory_balance:
                    head = np.where(fit_row, remaining, -np.inf)
                    fit_row = fit_row & (remaining == head.max())
                best_p = int(np.argmin(np.where(fit_row, row, np.inf)))
            best_t = float(row[best_p])
        else:  # ETF: smallest (EST, -bottom level, node, processor) pair.
            table = np.maximum(arrival[:nready], proc_ready)
            if remaining is not None:
                fits = memory[nodes][:, None] <= (remaining + _EPS)[None, :]
                lacking = ~fits.any(axis=1)
                if lacking.any():
                    bad = int(nodes[lacking].min())
                    raise _no_memory_fit(bad, memory[bad], remaining)
                table = np.where(fits, table, np.inf)
            best_t = float(table.min())
            rs, ps = np.nonzero(table == best_t)
            if rs.size > 1:
                bb = bottom[slot_node[rs]]
                keep = bb == bb.max()
                rs, ps = rs[keep], ps[keep]
            if rs.size > 1:
                nn = slot_node[rs]
                keep = nn == nn.min()
                rs, ps = rs[keep], ps[keep]
            j = int(np.argmin(ps))
            i = int(rs[j])
            best_p = int(ps[j])
            v = int(slot_node[i])
        pop_ready(i)
        proc[v] = best_p
        start[v] = best_t
        finish[v] = best_t + float(work[v])
        proc_ready[best_p] = finish[v]
        if remaining is not None:
            remaining[best_p] -= memory[v]
        for child in dag.children(v):
            remaining_parents[child] -= 1
            if remaining_parents[child] == 0:
                push_ready(child)

    return ClassicalSchedule(dag, machine, proc, start)


def _list_schedule_reference(
    dag: ComputationalDAG,
    machine: BspMachine,
    policy: str = "bl-est",
    *,
    respect_memory: bool = False,
    prefer_memory_balance: bool = False,
) -> ClassicalSchedule:
    """Straight-line reference implementation of :func:`list_schedule`.

    One python-level EST evaluation per (ready node, processor) pair, exactly
    as the policies are specified.  Kept as the oracle for the equivalence
    tests; :func:`list_schedule` must match it schedule-for-schedule.
    """
    if policy not in ("bl-est", "etf"):
        raise ValueError("policy must be 'bl-est' or 'etf'")
    n = dag.n
    P = machine.P
    proc = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ClassicalSchedule(dag, machine, proc, start)

    bounds = machine.memory_bounds if respect_memory else None
    remaining = bounds.astype(np.float64).copy() if bounds is not None else None
    memory = np.asarray(dag.memory, dtype=np.float64)

    delay = _comm_delay_factor(machine)
    bottom = dag.bottom_level()
    finish = np.zeros(n, dtype=np.float64)
    proc_ready = np.zeros(P, dtype=np.float64)
    remaining_parents = np.diff(dag.pred_indptr).copy()
    ready: Set[int] = set(np.nonzero(remaining_parents == 0)[0].tolist())
    comm = np.asarray(dag.comm, dtype=np.float64)

    def est(v: int, p: int) -> float:
        t = float(proc_ready[p])
        parents = dag.predecessors_array(v)
        if parents.size:
            arrive = finish[parents] + np.where(proc[parents] == p, 0.0, delay * comm[parents])
            t = max(t, float(arrive.max()))
        return t

    def feasible_processors(v: int) -> List[int]:
        if remaining is None:
            return list(range(P))
        fits = [p for p in range(P) if memory[v] <= remaining[p] + _EPS]
        if not fits:
            raise _no_memory_fit(v, memory[v], remaining)
        return fits

    for _ in range(n):
        if not ready:
            raise RuntimeError("list scheduler ran out of ready nodes prematurely")
        if policy == "bl-est":
            v = max(ready, key=lambda x: (bottom[x], -x))
            fits = feasible_processors(v)
            if prefer_memory_balance and remaining is not None:
                best_p = min(fits, key=lambda p: (-remaining[p], est(v, p), p))
            else:
                best_p = min(fits, key=lambda p: (est(v, p), p))
            best_t = est(v, best_p)
        else:  # ETF
            best: Optional[Tuple[float, float, int, int]] = None
            for v_cand in ready:
                for p in feasible_processors(v_cand):
                    t = est(v_cand, p)
                    key = (t, -float(bottom[v_cand]), v_cand, p)
                    if best is None or key < best:
                        best = key
            assert best is not None
            best_t, _, v, best_p = best
        ready.discard(v)
        proc[v] = best_p
        start[v] = best_t
        finish[v] = best_t + float(dag.work[v])
        proc_ready[best_p] = finish[v]
        if remaining is not None:
            remaining[best_p] -= memory[v]
        for child in dag.children(v):
            remaining_parents[child] -= 1
            if remaining_parents[child] == 0:
                ready.add(child)

    return ClassicalSchedule(dag, machine, proc, start)


class BlEstScheduler(Scheduler):
    """Bottom-Level / Earliest-Start-Time list scheduler."""

    name = "BL-EST"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return classical_to_bsp(list_schedule(dag, machine, policy="bl-est"))


class EtfScheduler(Scheduler):
    """Earliest Task First list scheduler."""

    name = "ETF"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return classical_to_bsp(list_schedule(dag, machine, policy="etf"))
