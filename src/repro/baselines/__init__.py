"""Baseline schedulers the paper compares against."""

from .cilk import CilkScheduler, simulate_work_stealing
from .hdagg import HDaggScheduler
from .list_schedulers import BlEstScheduler, EtfScheduler, list_schedule
from .memory import MemoryAwareGreedyScheduler, repair_memory
from .trivial import LevelRoundRobinScheduler, TrivialScheduler

__all__ = [
    "CilkScheduler",
    "simulate_work_stealing",
    "BlEstScheduler",
    "EtfScheduler",
    "list_schedule",
    "HDaggScheduler",
    "MemoryAwareGreedyScheduler",
    "repair_memory",
    "TrivialScheduler",
    "LevelRoundRobinScheduler",
]
