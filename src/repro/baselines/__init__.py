"""Baseline schedulers the paper compares against."""

from .cilk import CilkScheduler, simulate_work_stealing
from .hdagg import HDaggScheduler
from .list_schedulers import BlEstScheduler, EtfScheduler, list_schedule
from .trivial import LevelRoundRobinScheduler, TrivialScheduler

__all__ = [
    "CilkScheduler",
    "simulate_work_stealing",
    "BlEstScheduler",
    "EtfScheduler",
    "list_schedule",
    "HDaggScheduler",
    "TrivialScheduler",
    "LevelRoundRobinScheduler",
]
