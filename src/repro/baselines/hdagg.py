"""HDagg-style wavefront aggregation baseline (paper Section 4.1).

HDagg (Zarebavani et al., IPDPS 2022) sorts the nodes of the DAG into
*wavefronts* (level sets), aggregates consecutive wavefronts that are too
thin to keep all processors busy, and then distributes the nodes of each
aggregated wavefront over the processors so that the workload is balanced
and nodes tend to land on the processor that already owns their
predecessors.  A wavefront directly corresponds to a BSP superstep, so the
output is already in BSP format (unlike Cilk / BL-EST / ETF which need the
classical-to-BSP conversion).

The original implementation targets SpTRSV kernels; as the paper notes, the
method is a general DAG scheduler, which is what is reimplemented here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule, legalize_superstep_assignment
from ..scheduler import Scheduler

__all__ = ["HDaggScheduler"]


class HDaggScheduler(Scheduler):
    """Wavefront aggregation + locality-aware balanced assignment."""

    name = "HDagg"

    def __init__(self, aggregation_factor: float = 2.0, balance_slack: float = 1.1) -> None:
        """
        Parameters
        ----------
        aggregation_factor:
            Consecutive wavefronts are merged into one superstep while the
            merged group contains fewer than ``aggregation_factor * P`` nodes.
            This mirrors HDagg's aggregation of thin wavefronts, which keeps
            the number of synchronization points (supersteps) low.
        balance_slack:
            A processor may receive at most ``balance_slack`` times the
            average per-processor work of the superstep before the assignment
            falls back to the least-loaded processor.
        """
        if aggregation_factor <= 0:
            raise ValueError("aggregation_factor must be positive")
        if balance_slack < 1.0:
            raise ValueError("balance_slack must be at least 1")
        self.aggregation_factor = aggregation_factor
        self.balance_slack = balance_slack

    # ------------------------------------------------------------------
    def _aggregate_levels(self, dag: ComputationalDAG, P: int) -> List[List[int]]:
        """Merge consecutive level sets into supersteps."""
        level_sets = dag.level_sets()
        groups: List[List[int]] = []
        current: List[int] = []
        threshold = self.aggregation_factor * P
        for level_nodes in level_sets:
            current.extend(level_nodes)
            if len(current) >= threshold:
                groups.append(current)
                current = []
        if current:
            if groups and len(current) < P:
                # A trailing sliver of nodes: merge into the previous group
                # rather than paying another synchronization.
                groups[-1].extend(current)
            else:
                groups.append(current)
        return groups

    # ------------------------------------------------------------------
    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        n = dag.n
        P = machine.P
        proc = np.zeros(n, dtype=np.int64)
        step = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, proc, step)

        groups = self._aggregate_levels(dag, P)
        topo_pos = {v: i for i, v in enumerate(dag.topological_order())}
        comm = np.asarray(dag.comm, dtype=np.float64)
        work = np.asarray(dag.work, dtype=np.float64)

        for s, group in enumerate(groups):
            group_sorted = sorted(group, key=lambda v: topo_pos[v])
            total_work = float(work[group].sum())
            cap = self.balance_slack * total_work / P if P > 0 else float("inf")
            load = np.zeros(P, dtype=np.float64)
            affinity = np.zeros(P, dtype=np.float64)
            for v in group_sorted:
                step[v] = s
                # Locality score: communication weight of predecessors already
                # assigned to each processor (both in this and earlier groups).
                affinity[:] = 0.0
                parents = dag.predecessors_array(v)
                if parents.size:
                    np.add.at(affinity, proc[parents], comm[parents])
                max_affinity = float(affinity.max())
                preferred = int(np.argmax(affinity)) if max_affinity > 0 else int(np.argmin(load))
                if load[preferred] + float(work[v]) <= cap or max_affinity == 0:
                    target = preferred
                else:
                    target = int(np.argmin(load))
                proc[v] = target
                load[target] += float(work[v])

        # Within a group, an edge between different processors would violate
        # BSP validity (same superstep, so no communication phase in between).
        # Prefer pulling the successor onto the predecessor's processor when
        # all of its same-step predecessors agree; any remaining conflict is
        # resolved by the legalization pass, which pushes the successor into
        # a later superstep.
        for v in dag.topological_order():
            parents = dag.predecessors_array(v)
            if parents.size == 0:
                continue
            same_step_procs = np.unique(proc[parents[step[parents] == step[v]]])
            if same_step_procs.size == 1 and int(proc[v]) != int(same_step_procs[0]):
                proc[v] = same_step_procs[0]
        step = legalize_superstep_assignment(dag, proc, step)
        return BspSchedule(dag, machine, proc, step)
