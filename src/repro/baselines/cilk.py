"""Cilk-style work-stealing baseline (paper Section 4.1, Appendix A.1).

The scheduler is an event-driven simulation of the classic work-stealing
strategy adapted to DAGs:

* every processor keeps a stack of ready tasks;
* when the execution of the *last* unfinished predecessor of a node finishes
  on processor ``p``, the node is pushed onto the top of ``p``'s stack;
* an idle processor pops the top of its own stack, or — if empty — steals
  from the *bottom* of the stack of a uniformly random other processor with
  a non-empty stack;
* no processor idles while any ready task exists anywhere.

The simulation ignores communication costs (that is precisely the point of
this baseline) and produces a classical time-based schedule, which is then
converted into BSP supersteps with :func:`repro.model.classical.classical_to_bsp`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.classical import ClassicalSchedule, classical_to_bsp
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler

__all__ = ["CilkScheduler", "simulate_work_stealing"]


def simulate_work_stealing(
    dag: ComputationalDAG,
    machine: BspMachine,
    seed: Optional[int] = 0,
) -> ClassicalSchedule:
    """Event-driven simulation of DAG work stealing; returns start times."""
    n = dag.n
    P = machine.P
    rng = np.random.default_rng(seed)
    proc = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ClassicalSchedule(dag, machine, proc, start)

    remaining_parents = np.diff(dag.pred_indptr).copy()
    stacks: List[Deque[int]] = [deque() for _ in range(P)]
    # Sources are spawned by the "main" task on processor 0, mirroring the
    # original Cilk setting where the root process runs on one worker.
    for v in dag.topological_order():
        if remaining_parents[v] == 0:
            stacks[0].append(v)

    # (finish_time, sequence, node, processor) events; sequence breaks ties
    # deterministically.
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    busy = [False] * P
    scheduled = 0

    def try_assign(p: int, now: float) -> bool:
        nonlocal seq, scheduled
        node: Optional[int] = None
        if stacks[p]:
            node = stacks[p].pop()  # own stack: take the top (LIFO)
        else:
            candidates = [q for q in range(P) if q != p and stacks[q]]
            if candidates:
                victim = int(rng.choice(candidates))
                node = stacks[victim].popleft()  # steal from the bottom (FIFO)
        if node is None:
            return False
        proc[node] = p
        start[node] = now
        busy[p] = True
        seq += 1
        scheduled += 1
        heapq.heappush(events, (now + float(dag.work[node]), seq, node, p))
        return True

    # Kick off: all processors try to grab work at time 0.
    for p in range(P):
        while not busy[p] and try_assign(p, 0.0):
            break

    while events:
        time, _, node, p = heapq.heappop(events)
        busy[p] = False
        # The finishing node releases its children; they are pushed on the
        # top of the finishing processor's stack.
        for child in dag.children(node):
            remaining_parents[child] -= 1
            if remaining_parents[child] == 0:
                stacks[p].append(child)
        # Give work to every idle processor (the finisher first, so locally
        # spawned children tend to stay local like in Cilk).
        for q in [p] + [q for q in range(P) if q != p]:
            if not busy[q]:
                try_assign(q, time)

    if scheduled != n:
        # This can only happen if the DAG had a cycle, which the constructor
        # already excludes — guard to fail loudly rather than silently.
        raise RuntimeError("work-stealing simulation did not schedule all nodes")
    return ClassicalSchedule(dag, machine, proc, start)


class CilkScheduler(Scheduler):
    """Work-stealing baseline, converted to a BSP schedule."""

    name = "Cilk"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        classical = simulate_work_stealing(dag, machine, seed=self.seed)
        return classical_to_bsp(classical)
