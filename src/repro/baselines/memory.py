"""Memory-aware greedy scheduling and memory-feasibility repair.

The memory-constrained model variant gives every processor a bound on the
total memory weight of the nodes co-resident on it (see
:mod:`repro.model.machine`).  The classical baselines ignore that bound, so
on tight instances they produce schedules that
:meth:`~repro.model.schedule.BspSchedule.validate` rejects.  This module
provides the two memory-aware building blocks the rest of the framework
composes:

* :class:`MemoryAwareGreedyScheduler` (registry name ``greedy-mem``) — a
  bottom-level list scheduler in the style of BL-EST that only ever places a
  node on a processor with enough remaining memory.  With no bound in play
  it degenerates to plain BL-EST behaviour.
* :func:`repair_memory` — turn a memory-violating schedule into a feasible
  one by moving nodes off over-full processors (largest memory weight
  first), then re-legalizing the superstep assignment.  The local-search and
  multilevel schedulers use it to make non-memory-aware initializers usable
  under a bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.classical import classical_to_bsp
from ..model.machine import MEMORY_EPS as _EPS
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule, legalize_superstep_assignment
from ..scheduler import Scheduler, SchedulingError
from .list_schedulers import list_schedule

__all__ = ["MemoryAwareGreedyScheduler", "repair_memory"]


def _check_capacity(dag: ComputationalDAG, machine: BspMachine, bounds: np.ndarray) -> None:
    """Fail fast on instances no assignment can satisfy."""
    memory = np.asarray(dag.memory, dtype=np.float64)
    if dag.n and float(memory.max()) > float(bounds.max()) + _EPS:
        raise SchedulingError(
            f"node memory weight {memory.max():g} exceeds every processor's "
            f"memory bound (max {bounds.max():g})"
        )
    if float(memory.sum()) > float(bounds.sum()) + _EPS:
        raise SchedulingError(
            f"total memory weight {memory.sum():g} exceeds the machine's "
            f"aggregate memory capacity {bounds.sum():g}"
        )


class MemoryAwareGreedyScheduler(Scheduler):
    """Memory-feasible greedy list scheduler (the ``greedy-mem`` baseline).

    A thin memory-constrained front over the shared
    :func:`~repro.baselines.list_schedulers.list_schedule` routine: ready
    nodes are picked by descending bottom level (as in BL-EST) and placed on
    a processor with enough remaining memory capacity:

    * ``policy="est"`` picks, among the feasible processors, the one with
      the earliest start time (communication delays estimated exactly as in
      the BL-EST baseline);
    * ``policy="balance"`` prefers the feasible processor with the most
      remaining memory, breaking ties by earliest start time — useful when
      the bound is tight and the EST policy would fill one processor first.

    ``memory_bound`` overrides the machine's own bound for this scheduler
    (so ``greedy-mem(memory_bound=32)`` works on an unbounded machine);
    with neither set the scheduler behaves like plain BL-EST.
    """

    name = "GreedyMem"

    def __init__(self, memory_bound: Optional[object] = None, policy: str = "est") -> None:
        if policy not in ("est", "balance"):
            raise ValueError("policy must be 'est' or 'balance'")
        self.memory_bound = memory_bound
        self.policy = policy

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        if self.memory_bound is not None:
            machine = machine.with_memory_bound(self.memory_bound)
        if machine.memory_bounds is not None:
            _check_capacity(dag, machine, machine.memory_bounds)
        classical = list_schedule(
            dag,
            machine,
            policy="bl-est",
            respect_memory=True,
            prefer_memory_balance=self.policy == "balance",
        )
        return classical_to_bsp(classical)


def repair_memory(schedule: BspSchedule) -> BspSchedule:
    """Make a schedule memory-feasible by relocating (or swapping) nodes.

    Nodes are moved off over-full processors one at a time (largest memory
    weight first, onto the feasible processor with the most remaining
    capacity); when no single relocation fits, a pairwise swap with a
    lighter node on another processor is tried.  The superstep assignment is
    then re-legalized, which only ever delays nodes and therefore preserves
    validity.  Every relocation and every swap strictly shrinks the total
    overflow, so the pass terminates.

    This is a heuristic, not a decision procedure: a raised
    :class:`~repro.scheduler.SchedulingError` means relocations and pairwise
    swaps were not enough, not that the instance is infeasible (callers that
    need a from-scratch attempt fall back to
    :class:`MemoryAwareGreedyScheduler`).  Schedules on machines without
    memory bounds are returned unchanged.
    """
    machine = schedule.machine
    bounds = machine.memory_bounds
    if bounds is None:
        return schedule
    dag = schedule.dag
    usage = schedule.memory_usage()
    if np.all(usage <= bounds + _EPS):
        return schedule
    _check_capacity(dag, machine, bounds)

    memory = np.asarray(dag.memory, dtype=np.float64)
    proc = schedule.proc.copy()
    usage = usage.copy()
    P = machine.P

    def try_relocate(p: int, candidates) -> bool:
        for v in candidates:
            slack = bounds - usage
            slack[p] = -np.inf  # never "move" within the over-full processor
            q = int(np.argmax(slack))
            if memory[v] <= slack[q] + _EPS:
                proc[v] = q
                usage[p] -= memory[v]
                usage[q] += memory[v]
                return True
        return False

    def try_swap(p: int, candidates) -> bool:
        for v in candidates:
            for q in range(P):
                if q == p:
                    continue
                # Lightest strictly-lighter partner first: the swap then
                # shrinks p's load by the largest margin.
                partners = sorted(
                    (w for w in np.nonzero(proc == q)[0].tolist()
                     if memory[w] < memory[v]),
                    key=lambda w: (memory[w], w),
                )
                for w in partners:
                    if usage[q] - memory[w] + memory[v] <= bounds[q] + _EPS:
                        proc[v], proc[w] = q, p
                        shift = memory[v] - memory[w]
                        usage[p] -= shift
                        usage[q] += shift
                        return True
        return False

    while True:
        over = np.nonzero(usage > bounds + _EPS)[0]
        if over.size == 0:
            break
        p = int(over[int(np.argmax((usage - bounds)[over]))])
        # Candidates on p: positive memory weight, heaviest first.
        candidates = sorted(
            (v for v in np.nonzero(proc == p)[0].tolist() if memory[v] > 0),
            key=lambda v: (-memory[v], v),
        )
        if not try_relocate(p, candidates) and not try_swap(p, candidates):
            raise SchedulingError(
                f"memory overflow on processor {p} not repairable by "
                "relocation or pairwise swap (the instance may still be "
                "feasible; try a memory-aware scheduler from scratch)"
            )

    step = legalize_superstep_assignment(dag, proc, schedule.step)
    return BspSchedule(dag, machine, proc, step)
