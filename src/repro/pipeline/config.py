"""Configuration of the combined scheduling pipeline (paper Fig. 3 / Fig. 4).

The defaults mirror the paper's experimental setup, with time limits scaled
down so that the pure-Python reproduction stays responsive; the
:meth:`PipelineConfig.paper` constructor restores the paper's limits and
:meth:`PipelineConfig.fast` shrinks everything further for tests and quick
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

__all__ = ["PipelineConfig", "MultilevelConfig"]


@dataclass
class PipelineConfig:
    """Knobs of the combined scheduler (initializers + local search + ILPs)."""

    # --- initialization heuristics -----------------------------------
    use_bspg: bool = True
    use_source: bool = True
    use_ilp_init: bool = True
    #: ILPinit is only competitive (and affordable) for few processors; the
    #: paper restricts it to P = 4.
    ilp_init_max_processors: int = 4
    ilp_init_max_variables: int = 2000
    ilp_init_time_limit: Optional[float] = 10.0

    # --- local search --------------------------------------------------
    hc_variant: str = "first"
    hc_max_moves: Optional[int] = None
    hc_time_limit: Optional[float] = 10.0
    hccs_time_limit: Optional[float] = 2.0

    # --- ILP stages ------------------------------------------------------
    use_ilp_full: bool = True
    ilp_full_max_variables: int = 20_000
    ilp_full_time_limit: Optional[float] = 30.0
    use_ilp_partial: bool = True
    ilp_partial_max_variables: int = 4000
    ilp_partial_time_limit: Optional[float] = 10.0
    use_ilp_cs: bool = True
    ilp_cs_time_limit: Optional[float] = 10.0

    # --- misc -----------------------------------------------------------
    solver_backend: str = "highs"
    cilk_seed: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def fast(cls) -> "PipelineConfig":
        """Small limits for unit tests and smoke benchmarks."""
        return cls(
            use_ilp_init=False,
            hc_max_moves=200,
            hc_time_limit=2.0,
            hccs_time_limit=0.5,
            ilp_full_max_variables=4000,
            ilp_full_time_limit=3.0,
            ilp_partial_max_variables=1500,
            ilp_partial_time_limit=2.0,
            ilp_cs_time_limit=2.0,
        )

    @classmethod
    def heuristics_only(cls) -> "PipelineConfig":
        """Initializers + local search only (the paper's *huge* dataset mode)."""
        return cls(
            use_ilp_init=False,
            use_ilp_full=False,
            use_ilp_partial=False,
            use_ilp_cs=False,
        )

    @classmethod
    def paper(cls) -> "PipelineConfig":
        """The paper's time limits (minutes-to-hours; use only for full runs)."""
        return cls(
            hc_time_limit=270.0,
            hccs_time_limit=30.0,
            ilp_init_time_limit=120.0,
            ilp_full_time_limit=3600.0,
            ilp_partial_time_limit=180.0,
            ilp_cs_time_limit=300.0,
        )

    def without_ilp_cs(self) -> "PipelineConfig":
        """Copy with the communication-schedule ILP disabled (used inside the
        multilevel coarse solve, which re-runs ILPcs on the original DAG)."""
        return replace(self, use_ilp_cs=False)

    # ------------------------------------------------------------------
    # Registry / spec-string support
    # ------------------------------------------------------------------
    @classmethod
    def preset(cls, name: str) -> "PipelineConfig":
        """Named preset: ``default``, ``fast``, ``heuristics`` or ``paper``."""
        presets = {
            "default": cls,
            "full": cls,
            "fast": cls.fast,
            "heuristics": cls.heuristics_only,
            "paper": cls.paper,
        }
        try:
            return presets[str(name).strip().lower()]()
        except KeyError as exc:
            raise ValueError(
                f"unknown pipeline preset {name!r}; available: {', '.join(sorted(presets))}"
            ) from exc

    @classmethod
    def field_names(cls) -> "frozenset[str]":
        """Names of all configurable knobs (used by the scheduler registry)."""
        return frozenset(f.name for f in fields(cls))

    def with_overrides(self, **overrides: Any) -> "PipelineConfig":
        """Copy with the given knobs replaced; unknown names raise ValueError."""
        unknown = sorted(set(overrides) - self.field_names())
        if unknown:
            raise ValueError(
                f"unknown pipeline option(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(self.field_names()))}"
            )
        return replace(self, **overrides)


@dataclass
class MultilevelConfig:
    """Knobs of the multilevel scheduler (paper Fig. 4)."""

    #: Coarsening ratios to try; the best resulting schedule is returned.
    coarsening_ratios: tuple = (0.3, 0.15)
    #: Minimum size of the coarsened DAG (coarsening stops there regardless
    #: of the ratio) — the paper skips multilevel scheduling on the tiny
    #: dataset precisely because the coarse DAG would degenerate.
    min_coarse_nodes: int = 8
    light_edge_fraction: float = 1.0 / 3.0
    refine_interval: int = 5
    hc_moves_per_refinement: int = 100
    #: Optional per-processor memory bound applied to the machine before
    #: scheduling (``multilevel(memory_bound=...)`` spec strings); a scalar
    #: is broadcast, a tuple gives one value per processor.  ``None`` keeps
    #: whatever bound the machine itself carries.
    memory_bound: Optional[object] = None
    base_pipeline: PipelineConfig = field(default_factory=PipelineConfig.fast)

    def __post_init__(self) -> None:
        # Spec strings deliver ratio lists as tuples/lists of numbers; keep
        # the stored form a tuple so configs compare (and hash) by value.
        self.coarsening_ratios = tuple(float(r) for r in self.coarsening_ratios)
        if isinstance(self.memory_bound, (list, tuple)):
            self.memory_bound = tuple(float(b) for b in self.memory_bound)

    # ------------------------------------------------------------------
    # Registry / spec-string support
    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> "frozenset[str]":
        """Names of the multilevel-specific knobs (``base_pipeline`` excluded)."""
        return frozenset(f.name for f in fields(cls)) - {"base_pipeline"}

    def with_overrides(self, **overrides: Any) -> "MultilevelConfig":
        """Copy with knobs replaced; pipeline knobs fall through to the base
        pipeline config, unknown names raise ValueError."""
        own: Dict[str, Any] = {}
        base: Dict[str, Any] = {}
        unknown = []
        for key, value in overrides.items():
            if key in self.field_names():
                own[key] = value
            elif key in PipelineConfig.field_names():
                base[key] = value
            else:
                unknown.append(key)
        if unknown:
            raise ValueError(
                f"unknown multilevel option(s) {', '.join(sorted(unknown))}; available: "
                f"{', '.join(sorted(self.field_names() | PipelineConfig.field_names()))}"
            )
        pipeline = self.base_pipeline.with_overrides(**base) if base else self.base_pipeline
        return replace(self, base_pipeline=pipeline, **own)
