"""Adaptive scheduler: choose between the base framework and the multilevel
scheduler based on the communication-to-computation ratio.

The paper observes (Sections 7.2/7.3, Appendix A.5 and C.6) that the
multilevel scheduler is the right tool only when the problem is dominated by
communication costs, and names the automatic selection of the approach as a
promising extension.  This module implements that extension in its simplest
form: compute the machine-weighted CCR of the instance and dispatch to the
multilevel scheduler above a threshold, to the base framework below it —
optionally running both near the threshold and keeping the cheaper result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..graphs.analysis import communication_to_computation_ratio
from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..multilevel.scheduler import multilevel_schedule
from ..scheduler import Scheduler
from .config import MultilevelConfig, PipelineConfig
from .framework import run_pipeline

__all__ = ["AdaptiveScheduler", "AdaptiveDecision"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """Record of which strategy the adaptive scheduler picked and why."""

    ccr: float
    used_multilevel: bool
    used_base: bool
    base_cost: Optional[float]
    multilevel_cost: Optional[float]


@dataclass
class AdaptiveScheduler(Scheduler):
    """Dispatch between the base framework and the multilevel scheduler.

    Parameters
    ----------
    ccr_threshold:
        Machine-weighted CCR above which the instance is considered
        communication-dominated.
    margin:
        Relative band around the threshold in which *both* schedulers are run
        and the cheaper schedule is kept (set to 0 to always run only one).
    """

    pipeline_config: PipelineConfig = field(default_factory=PipelineConfig.fast)
    multilevel_config: Optional[MultilevelConfig] = None
    ccr_threshold: float = 8.0
    margin: float = 0.5
    name: str = "Adaptive"

    def __post_init__(self) -> None:
        if self.ccr_threshold <= 0:
            raise ValueError("ccr_threshold must be positive")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        if self.multilevel_config is None:
            self.multilevel_config = MultilevelConfig(base_pipeline=self.pipeline_config)
        self.last_decision: Optional[AdaptiveDecision] = None

    # ------------------------------------------------------------------
    def _strategies(self, ccr: float) -> Tuple[bool, bool]:
        """(use_base, use_multilevel) for a given CCR."""
        lo = self.ccr_threshold * (1.0 - self.margin)
        hi = self.ccr_threshold * (1.0 + self.margin)
        if ccr < lo:
            return True, False
        if ccr > hi:
            return False, True
        return True, True

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        ccr = communication_to_computation_ratio(dag, machine)
        use_base, use_multilevel = self._strategies(ccr)
        if dag.n <= self.multilevel_config.min_coarse_nodes:
            # Too small to coarsen meaningfully; the base framework handles it.
            use_base, use_multilevel = True, False

        base_schedule = base_cost = None
        ml_schedule = ml_cost = None
        if use_base:
            base_schedule = run_pipeline(dag, machine, self.pipeline_config).schedule
            base_cost = float(base_schedule.cost())
        if use_multilevel:
            ml_schedule, _ = multilevel_schedule(dag, machine, self.multilevel_config)
            ml_cost = float(ml_schedule.cost())

        self.last_decision = AdaptiveDecision(
            ccr=ccr,
            used_multilevel=use_multilevel,
            used_base=use_base,
            base_cost=base_cost,
            multilevel_cost=ml_cost,
        )
        candidates = [
            (cost, sched)
            for cost, sched in ((base_cost, base_schedule), (ml_cost, ml_schedule))
            if sched is not None
        ]
        return min(candidates, key=lambda pair: pair[0])[1]
