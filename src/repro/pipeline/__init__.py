"""The combined scheduling pipeline (paper Figures 3 and 4)."""

from .adaptive import AdaptiveDecision, AdaptiveScheduler
from .config import MultilevelConfig, PipelineConfig
from .framework import FrameworkScheduler, PipelineResult, run_pipeline

__all__ = [
    "PipelineConfig",
    "MultilevelConfig",
    "run_pipeline",
    "PipelineResult",
    "FrameworkScheduler",
    "AdaptiveScheduler",
    "AdaptiveDecision",
]
