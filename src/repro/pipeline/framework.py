"""The combined scheduling framework of the paper (Figure 3).

The pipeline runs the initialization heuristics (BSPg, Source and — for few
processors — ILPinit), improves each initial schedule with the hill-climbing
local searches HC and HCcs, keeps the best schedule found so far, and then
applies the ILP-based methods: the full ILP when the estimated problem size
permits, otherwise the partial window ILP, followed by the
communication-schedule ILP.

:func:`run_pipeline` returns a :class:`PipelineResult` that records the best
schedule *after every stage* — exactly the "Init", "HCcs" and "ILP" series
plotted in the paper's Figures 5 and 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.dag import ComputationalDAG
from ..heuristics.bspg import BspGreedyScheduler
from ..heuristics.source import SourceScheduler
from ..ilp.commsched import CommScheduleIlpImprover
from ..ilp.formulation import estimate_variable_count
from ..ilp.full import solve_full_ilp
from ..ilp.init import IlpInitScheduler
from ..ilp.partial import PartialIlpImprover
from ..localsearch.comm_hill_climbing import comm_hill_climb
from ..localsearch.hill_climbing import hill_climb
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from ..scheduler import Scheduler
from .config import PipelineConfig

__all__ = ["PipelineResult", "run_pipeline", "FrameworkScheduler"]


@dataclass
class PipelineResult:
    """Best schedule and cost after each pipeline stage."""

    schedule: BspSchedule
    #: Cost of the best *raw* initialization schedule ("Init" in the figures).
    init_cost: float
    #: Cost after HC + HCcs on the best candidate ("HCcs" in the figures).
    local_search_cost: float
    #: Final cost after the ILP stages ("ILP" in the figures).
    final_cost: float
    #: Which initializer produced the best starting schedule.
    best_initializer: str
    #: Cost after the assignment ILPs (ILPfull / ILPpart) but before ILPcs —
    #: the "ILPpart" column of the paper's Table 7.
    ilp_assignment_cost: float = float("nan")
    #: Per-initializer raw costs (diagnostics, Tables 4 and 5).
    initializer_costs: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds spent in each stage.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def stage_costs(self) -> Dict[str, float]:
        """Costs keyed by the paper's stage labels."""
        return {
            "Init": self.init_cost,
            "HCcs": self.local_search_cost,
            "ILP": self.final_cost,
        }


def _initializers(machine: BspMachine, config: PipelineConfig) -> List[Scheduler]:
    inits: List[Scheduler] = []
    if config.use_bspg:
        inits.append(BspGreedyScheduler())
    if config.use_source:
        inits.append(SourceScheduler())
    if config.use_ilp_init and machine.P <= config.ilp_init_max_processors:
        inits.append(
            IlpInitScheduler(
                max_variables=config.ilp_init_max_variables,
                time_limit_per_batch=config.ilp_init_time_limit,
                backend=config.solver_backend,
            )
        )
    if not inits:
        inits.append(BspGreedyScheduler())
    return inits


def run_pipeline(
    dag: ComputationalDAG,
    machine: BspMachine,
    config: Optional[PipelineConfig] = None,
) -> PipelineResult:
    """Run the full scheduling pipeline of the paper on one instance."""
    if config is None:
        config = PipelineConfig()
    with _trace.span("pipeline", nodes=dag.n, P=machine.P) as tspan:
        return _run_pipeline(dag, machine, config, tspan)


def _run_pipeline(
    dag: ComputationalDAG,
    machine: BspMachine,
    config: PipelineConfig,
    tspan: "_trace.SpanLike",
) -> PipelineResult:
    stage_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Stage 1: initialization heuristics
    # ------------------------------------------------------------------
    t0 = time.monotonic()
    with _trace.span("init") as stage_span:
        init_schedules: List[Tuple[str, BspSchedule]] = []
        initializer_costs: Dict[str, float] = {}
        for scheduler in _initializers(machine, config):
            sched = scheduler.schedule(dag, machine)
            init_schedules.append((scheduler.name, sched))
            initializer_costs[scheduler.name] = float(sched.cost())
        best_init_name, best_init_schedule = min(init_schedules, key=lambda kv: kv[1].cost())
        init_cost = float(best_init_schedule.cost())
        if _trace.enabled():
            stage_span.annotate(best=best_init_name, cost=init_cost)
    stage_seconds["init"] = time.monotonic() - t0

    # ------------------------------------------------------------------
    # Stage 2: HC + HCcs on every initial schedule, keep the best
    # ------------------------------------------------------------------
    t0 = time.monotonic()
    with _trace.span("local_search") as stage_span:
        best_schedule: Optional[BspSchedule] = None
        best_cost = float("inf")
        for _, sched in init_schedules:
            hc_result = hill_climb(
                sched,
                variant=config.hc_variant,
                max_moves=config.hc_max_moves,
                time_limit=config.hc_time_limit,
            )
            improved = comm_hill_climb(
                hc_result.schedule, time_limit=config.hccs_time_limit
            ).schedule
            cost = float(improved.cost())
            if cost < best_cost:
                best_cost = cost
                best_schedule = improved
        assert best_schedule is not None
        local_search_cost = best_cost
        if _trace.enabled():
            stage_span.annotate(cost=local_search_cost)
    stage_seconds["local_search"] = time.monotonic() - t0

    # ------------------------------------------------------------------
    # Stage 3: ILP-based methods
    # ------------------------------------------------------------------
    t0 = time.monotonic()
    with _trace.span("ilp") as stage_span:
        current = best_schedule
        current_cost = best_cost

        num_supersteps = max(current.num_supersteps, 1)
        full_applicable = (
            config.use_ilp_full
            and estimate_variable_count(dag.n, num_supersteps, machine.P)
            <= config.ilp_full_max_variables
        )
        if full_applicable:
            solved = solve_full_ilp(
                dag,
                machine,
                num_supersteps,
                time_limit=config.ilp_full_time_limit,
                backend=config.solver_backend,
            )
            if solved is not None and solved.cost() < current_cost:
                current = solved
                current_cost = float(solved.cost())

        if config.use_ilp_partial and not full_applicable:
            improver = PartialIlpImprover(
                max_variables=config.ilp_partial_max_variables,
                time_limit_per_window=config.ilp_partial_time_limit,
                backend=config.solver_backend,
            )
            improved = improver.improve(current)
            if improved.cost() < current_cost:
                current = improved
                current_cost = float(improved.cost())

        ilp_assignment_cost = current_cost

        if config.use_ilp_cs:
            improver_cs = CommScheduleIlpImprover(
                time_limit=config.ilp_cs_time_limit, backend=config.solver_backend
            )
            improved = improver_cs.improve(current)
            if improved.cost() <= current_cost:
                current = improved
                current_cost = float(improved.cost())
        if _trace.enabled():
            stage_span.annotate(full_ilp=full_applicable, cost=current_cost)
    stage_seconds["ilp"] = time.monotonic() - t0

    if _trace.enabled():
        tspan.annotate(
            init_cost=init_cost,
            local_search_cost=local_search_cost,
            final_cost=current_cost,
            best_initializer=best_init_name,
        )
    return PipelineResult(
        schedule=current,
        init_cost=init_cost,
        local_search_cost=local_search_cost,
        final_cost=current_cost,
        best_initializer=best_init_name,
        ilp_assignment_cost=ilp_assignment_cost,
        initializer_costs=initializer_costs,
        stage_seconds=stage_seconds,
    )


class FrameworkScheduler(Scheduler):
    """The paper's combined scheduler as a plain :class:`Scheduler`."""

    name = "Framework"

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        return run_pipeline(dag, machine, self.config).schedule
