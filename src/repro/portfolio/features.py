"""Instance featurization for portfolio scheduling.

The paper's central empirical finding is that no single scheduler dominates:
the winner shifts with the instance family (spmv/exp/cg/kNN versus the
coarse database DAGs), the size tier (tiny .. huge) and the machine model
(NUMA structure, latency, memory bounds).  Portfolio selection therefore
needs a *feature vector* summarizing a (DAG, machine) instance — cheap to
compute, deterministic, JSON round-trippable and hashable into a canonical
*instance signature* that content-addresses the solution cache.

:class:`InstanceFeatures` collects

* graph structure: node/edge counts, sources/sinks, depth, maximum and
  average level width (built on :func:`repro.graphs.analysis.dag_statistics`),
* degree-distribution moments: mean / standard deviation / maximum of the
  in- and out-degree distributions,
* weight structure: total and per-node average work and communication
  weights, their coefficient of variation, the plain CCR and the
  machine-adjusted effective CCR of Appendix A.5,
* memory pressure: total memory weight relative to the machine's aggregate
  memory bound (0 when unbounded),
* machine summary: P, g, l, NUMA mean/max coefficients, uniformity flag and
  the binding (minimum) per-processor memory bound.

:func:`instance_signature` hashes the raw instance content (edge arrays,
weight arrays, the NUMA matrix, memory bounds) — not the feature vector — so
two instances share a signature exactly when every byte a scheduler can see
is identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

import numpy as np

from ..graphs.analysis import communication_to_computation_ratio, dag_statistics
from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine

__all__ = ["InstanceFeatures", "extract_features", "instance_signature"]


def _moments(values: np.ndarray) -> tuple:
    """(mean, std, max) of a non-negative integer distribution."""
    if values.size == 0:
        return 0.0, 0.0, 0
    return float(np.mean(values)), float(np.std(values)), int(np.max(values))


def _cv(values: np.ndarray) -> float:
    """Coefficient of variation (std/mean); 0 for empty or zero-mean data."""
    if values.size == 0:
        return 0.0
    mean = float(np.mean(values))
    if mean == 0.0:
        return 0.0
    return float(np.std(values) / mean)


@dataclass(frozen=True)
class InstanceFeatures:
    """Deterministic feature vector of one (DAG, machine) instance."""

    # Graph structure
    name: str
    num_nodes: int
    num_edges: int
    num_sources: int
    num_sinks: int
    depth: int
    max_width: int
    avg_width: float
    # Degree-distribution moments
    in_degree_mean: float
    in_degree_std: float
    in_degree_max: int
    out_degree_mean: float
    out_degree_std: float
    out_degree_max: int
    # Weight structure
    total_work: int
    total_comm: int
    avg_work: float
    avg_comm: float
    work_cv: float
    comm_cv: float
    ccr: float
    effective_ccr: float
    # Memory pressure
    total_memory: int
    memory_pressure: float
    # Machine summary
    P: int
    g: float
    l: float
    numa_mean: float
    numa_max: float
    numa_uniform: bool
    memory_bound_min: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (field order, all fields)."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (np.integer,)):
                value = int(value)
            elif isinstance(value, (np.floating,)):
                value = float(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InstanceFeatures":
        """Rebuild a feature vector written by :meth:`to_dict`."""
        kwargs = {f.name: data[f.name] for f in fields(cls)}
        return cls(**kwargs)


def extract_features(dag: ComputationalDAG, machine: BspMachine) -> InstanceFeatures:
    """Compute the :class:`InstanceFeatures` of one instance.

    Deterministic: two calls on equal instances produce equal (and equal
    ``to_dict``) feature vectors.
    """
    stats = dag_statistics(dag)
    n = dag.n
    in_degrees = (
        np.diff(dag.pred_indptr) if n > 0 else np.zeros(0, dtype=np.int64)
    )
    out_degrees = (
        np.diff(dag.succ_indptr) if n > 0 else np.zeros(0, dtype=np.int64)
    )
    in_mean, in_std, in_max = _moments(np.asarray(in_degrees))
    out_mean, out_std, out_max = _moments(np.asarray(out_degrees))
    work = np.asarray(dag.work, dtype=np.float64)
    comm = np.asarray(dag.comm, dtype=np.float64)

    numa = np.asarray(machine.numa, dtype=np.float64)
    off_diag = numa[~np.eye(machine.P, dtype=bool)] if machine.P > 1 else np.zeros(0)
    numa_mean = float(np.mean(off_diag)) if off_diag.size else 0.0
    numa_max = float(np.max(off_diag)) if off_diag.size else 0.0

    total_memory = dag.total_memory()
    bounds = machine.memory_bounds
    if bounds is None:
        memory_bound_min = 0.0
        memory_pressure = 0.0
    else:
        memory_bound_min = float(np.min(bounds))
        capacity = float(np.sum(bounds))
        memory_pressure = float(total_memory / capacity) if capacity > 0 else 0.0

    return InstanceFeatures(
        name=dag.name,
        num_nodes=n,
        num_edges=stats.num_edges,
        num_sources=stats.num_sources,
        num_sinks=stats.num_sinks,
        depth=stats.depth,
        max_width=stats.max_width,
        avg_width=float(n / stats.depth) if stats.depth > 0 else 0.0,
        in_degree_mean=in_mean,
        in_degree_std=in_std,
        in_degree_max=in_max,
        out_degree_mean=out_mean,
        out_degree_std=out_std,
        out_degree_max=out_max,
        total_work=stats.total_work,
        total_comm=stats.total_comm,
        avg_work=float(np.mean(work)) if n > 0 else 0.0,
        avg_comm=float(np.mean(comm)) if n > 0 else 0.0,
        work_cv=_cv(work),
        comm_cv=_cv(comm),
        ccr=stats.ccr,
        effective_ccr=communication_to_computation_ratio(dag, machine),
        total_memory=total_memory,
        memory_pressure=memory_pressure,
        P=machine.P,
        g=float(machine.g),
        l=float(machine.l),
        numa_mean=numa_mean,
        numa_max=numa_max,
        numa_uniform=bool(machine.is_uniform),
        memory_bound_min=memory_bound_min,
    )


def instance_signature(dag: ComputationalDAG, machine: BspMachine) -> str:
    """Canonical content hash of one (DAG, machine) instance.

    Hashes everything a scheduler can observe: the DAG name, node count, the
    CSR edge arrays, work/comm/memory weights, the machine's ``P``/``g``/``l``,
    the full NUMA matrix and the per-processor memory bounds.  Two instances
    share a signature iff they are bytewise-identical inputs, which makes
    the signature safe as a content address for cached solutions.
    """
    digest = hashlib.sha256()

    # Every field is length-prefixed/delimited so that variable-length
    # neighbours can never alias each other's byte streams (("x1", 1) vs
    # ("x", 11), arrays of different splits, ...): a collision here would
    # make the cache serve a schedule for a different instance.
    def _text(value: str) -> None:
        raw = value.encode()
        digest.update(str(len(raw)).encode() + b":" + raw + b"|")

    def _array(values) -> None:
        contiguous = np.ascontiguousarray(values)
        # The dtype must participate: an int64 and a float64 array with the
        # same shape can share a byte pattern (all-zero weights do), and
        # dtype changes what a scheduler computes from those bytes.
        digest.update(str(contiguous.shape).encode() + b":")
        digest.update(contiguous.dtype.str.encode() + b":")
        digest.update(contiguous.tobytes() + b"|")

    _text(dag.name)
    _text(str(dag.n))
    _array(dag.edge_sources)
    _array(dag.edge_targets)
    _array(dag.work)
    _array(dag.comm)
    _array(dag.memory)
    _text(f"{machine.P}|{machine.g!r}|{machine.l!r}")
    _array(machine.numa)
    if machine.memory_bounds is not None:
        _array(machine.memory_bounds)
    return digest.hexdigest()
