"""Content-addressed, on-disk solution cache.

Re-solving an identical instance with an identical scheduler spec repeats
the full search — for the heavy repeated traffic the ROADMAP targets, that
is the single largest avoidable cost.  This module memoizes solved requests
on disk, keyed by ``(instance signature, scheduler spec, seed)``:

* the *instance signature* (:func:`repro.portfolio.features.instance_signature`)
  content-addresses the (DAG, machine) pair,
* the entry payload stores both the deterministic
  :class:`~repro.spec.SolveResult` dictionary and the full schedule
  (:func:`repro.experiments.persistence.schedule_to_dict`), so a hit can
  reproduce the exact solve outcome — byte-identical result, identical
  schedule — without re-running any scheduler,
* writes are atomic (temp file + ``os.replace`` in the same directory), so
  concurrent workers of a :class:`~repro.experiments.runner.ParallelRunner`
  pool can share one cache directory without torn entries,
* every entry carries a ``format`` version header; entries written by an
  incompatible cache format are treated as misses (and overwritten on the
  next store),
* an in-process LRU layer serves repeated hits of hot keys without touching
  the filesystem.

Layout: ``<root>/<sig[:2]>/<key>.json`` where ``key`` is the SHA-256 of
``signature|scheduler spec|seed`` — flat, shardable, and independent of any
filesystem-unsafe characters a spec string may contain.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..model.schedule import BspSchedule
from ..spec import SolveResult

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheEntry",
    "SolutionCache",
    "default_cache_dir",
    "set_default_cache_dir",
]

#: Version header of the on-disk entry format.  Bump whenever the payload
#: layout (or the serialization of schedules/results it embeds) changes
#: incompatibly; readers treat any other version as a miss.
CACHE_FORMAT_VERSION = 1

PathLike = Union[str, Path]

#: Process-wide default cache directory (CLI ``--cache-dir`` / REPRO_CACHE_DIR).
_DEFAULT_CACHE_DIR: Optional[str] = None
#: Whether this module wrote REPRO_CACHE_DIR itself, and what it displaced —
#: clearing the default must restore the user's own variable, not delete it.
_ENV_OVERRIDDEN = False
_ENV_SAVED: Optional[str] = None


def set_default_cache_dir(path: Optional[PathLike]) -> None:
    """Set (or clear, with ``None``) the process-wide default cache directory.

    Portfolio schedulers built with ``cache=default`` (and the CLI's
    ``--cache-dir`` flag) resolve through this hook.  The directory is also
    exported as ``REPRO_CACHE_DIR`` so that multiprocessing pool workers see
    it under *any* start method — with ``spawn`` (macOS/Windows) a worker
    re-imports this module and would otherwise come up with no default,
    silently disabling the cache for parallel batches.  Clearing restores
    whatever ``REPRO_CACHE_DIR`` held before this hook overrode it.
    """
    global _DEFAULT_CACHE_DIR, _ENV_OVERRIDDEN, _ENV_SAVED
    if path is not None:
        if not _ENV_OVERRIDDEN:
            _ENV_SAVED = os.environ.get("REPRO_CACHE_DIR")
            _ENV_OVERRIDDEN = True
        _DEFAULT_CACHE_DIR = str(path)
        os.environ["REPRO_CACHE_DIR"] = _DEFAULT_CACHE_DIR
    else:
        _DEFAULT_CACHE_DIR = None
        if _ENV_OVERRIDDEN:
            if _ENV_SAVED is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = _ENV_SAVED
            _ENV_OVERRIDDEN = False
            _ENV_SAVED = None


def default_cache_dir() -> Optional[str]:
    """The process-wide default cache directory, if any.

    Resolution order: :func:`set_default_cache_dir`, then the
    ``REPRO_CACHE_DIR`` environment variable, then ``None`` (caching off).
    """
    if _DEFAULT_CACHE_DIR is not None:
        return _DEFAULT_CACHE_DIR
    return os.environ.get("REPRO_CACHE_DIR") or None


@dataclass(frozen=True)
class CacheEntry:
    """One cached solution: the solve outcome plus its schedule.

    The schedule is the load-bearing half (a hit replays it instead of
    re-solving); the stored :class:`~repro.spec.SolveResult` is the
    introspection payload — ``portfolio-explain`` and services reading the
    cache directly get the full outcome without re-costing — and is ``None``
    when an entry predates a result-schema detail (never a reason to
    re-solve).
    """

    result: Optional[SolveResult]
    schedule: BspSchedule
    #: The scheduler spec the portfolio actually delegated to (for
    #: ``portfolio-explain`` and cache introspection).
    chosen: str = ""


class SolutionCache:
    """Content-addressed solution store with an in-process LRU layer.

    ``get``/``put`` never raise on cache corruption: an unreadable,
    malformed or version-incompatible entry is simply a miss.  ``hits`` /
    ``misses`` / ``stores`` count the traffic of this process.
    """

    def __init__(self, root: PathLike, *, max_memory_entries: int = 128) -> None:
        self.root = Path(root)
        self.max_memory_entries = int(max_memory_entries)
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key(signature: str, scheduler_spec: str, seed: Optional[int]) -> str:
        """Digest identifying one (instance, scheduler spec, seed) solution."""
        payload = f"{signature}|{scheduler_spec}|{'' if seed is None else int(seed)}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_path(self, signature: str, scheduler_spec: str, seed: Optional[int]) -> Path:
        """On-disk location of the entry (exists only after a store)."""
        key = self.key(signature, scheduler_spec, seed)
        return self.root / signature[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(
        self, signature: str, scheduler_spec: str, seed: Optional[int] = None
    ) -> Optional[CacheEntry]:
        """Cached solution for the key, or ``None`` on a miss."""
        from ..experiments.persistence import schedule_from_dict

        key = self.key(signature, scheduler_spec, seed)
        payload = self._lru_get(key)
        if payload is None:
            path = self.entry_path(signature, scheduler_spec, seed)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, ValueError):
                self.misses += 1
                return None
            if (
                not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT_VERSION
                or payload.get("key") != key
            ):
                self.misses += 1
                return None
            self._lru_put(key, payload)
        try:
            schedule = schedule_from_dict(payload["schedule"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        try:
            result: Optional[SolveResult] = SolveResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            result = None
        entry = CacheEntry(result=result, schedule=schedule, chosen=payload.get("chosen", ""))
        self.hits += 1
        return entry

    def put(
        self,
        signature: str,
        scheduler_spec: str,
        seed: Optional[int],
        result: SolveResult,
        schedule: BspSchedule,
        *,
        chosen: str = "",
    ) -> Path:
        """Store one solution atomically; returns the entry path."""
        from ..experiments.persistence import schedule_to_dict

        key = self.key(signature, scheduler_spec, seed)
        payload: Dict[str, Any] = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "signature": signature,
            "scheduler": scheduler_spec,
            "seed": None if seed is None else int(seed),
            "chosen": chosen,
            "result": result.to_dict(),
            "schedule": schedule_to_dict(schedule),
        }
        path = self.entry_path(signature, scheduler_spec, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._lru_put(key, payload)
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    # In-process LRU layer
    # ------------------------------------------------------------------
    def _lru_get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._lru.get(key)
        if payload is not None:
            self._lru.move_to_end(key)
        return payload

    def _lru_put(self, key: str, payload: Dict[str, Any]) -> None:
        if self.max_memory_entries <= 0:
            return
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_memory_entries:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters of this process, plus the LRU occupancy.

        This is the per-session telemetry surfaced by ``repro cache-stats``
        and the serve daemon's ``stats`` endpoint; on-disk totals are the
        separate (directory-walking) :meth:`disk_stats`.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lru_entries": len(self._lru),
            "lru_capacity": self.max_memory_entries,
        }

    def disk_stats(self) -> Dict[str, int]:
        """On-disk totals: entry count, payload bytes, shard directories.

        Walks the cache root (missing root: all zeros).  In-flight temp
        files of concurrent writers (``.tmp-*``) are not counted — only
        fully committed entries.
        """
        entries = 0
        total_bytes = 0
        shards = 0
        try:
            shard_dirs = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            shard_dirs = []
        for shard in shard_dirs:
            shards += 1
            try:
                for path in shard.iterdir():
                    if path.name.startswith(".tmp-") or path.suffix != ".json":
                        continue
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        continue  # concurrently evicted/replaced
                    entries += 1
            except OSError:
                continue
        return {"entries": entries, "bytes": total_bytes, "shards": shards}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SolutionCache(root={str(self.root)!r}, {self.stats()})"
