"""Content-addressed, on-disk solution cache.

Re-solving an identical instance with an identical scheduler spec repeats
the full search — for the heavy repeated traffic the ROADMAP targets, that
is the single largest avoidable cost.  This module memoizes solved requests
on disk, keyed by ``(instance signature, scheduler spec, seed)``:

* the *instance signature* (:func:`repro.portfolio.features.instance_signature`)
  content-addresses the (DAG, machine) pair,
* the entry payload stores both the deterministic
  :class:`~repro.spec.SolveResult` dictionary and the full schedule
  (:func:`repro.experiments.persistence.schedule_to_dict`), so a hit can
  reproduce the exact solve outcome — byte-identical result, identical
  schedule — without re-running any scheduler,
* writes are atomic (temp file + ``os.replace`` in the same directory), so
  concurrent workers of a :class:`~repro.experiments.runner.ParallelRunner`
  pool can share one cache directory without torn entries,
* every entry carries a ``format`` version header; entries written by an
  incompatible cache format are treated as misses (and overwritten on the
  next store),
* an in-process LRU layer serves repeated hits of hot keys without touching
  the filesystem,
* the on-disk tier can be size-bounded (``max_disk_bytes`` /
  ``max_disk_entries``): every shard keeps an append-only *access journal*
  (one key per line, appended on disk reads and stores) from which
  :meth:`SolutionCache.evict` derives a least-recently-used order, and a
  store that pushes the directory over budget triggers best-effort eviction
  of the coldest entries.  ``repro cache-gc`` runs the same eviction
  explicitly.

Layout: ``<root>/<sig[:2]>/<key>.json`` where ``key`` is the SHA-256 of
``signature|scheduler spec|seed`` — flat, shardable, and independent of any
filesystem-unsafe characters a spec string may contain.  Each shard may
additionally hold a ``.journal`` file (the access journal; atomic one-line
appends, compacted via temp file + ``os.replace`` when it grows past
:data:`JOURNAL_COMPACT_BYTES`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..model.schedule import BspSchedule
from ..obs import trace as _trace
from ..obs.metrics import Metrics
from ..spec import SolveResult

__all__ = [
    "CACHE_FORMAT_VERSION",
    "JOURNAL_COMPACT_BYTES",
    "CacheEntry",
    "SolutionCache",
    "default_cache_dir",
    "set_default_cache_dir",
]

#: Version header of the on-disk entry format.  Bump whenever the payload
#: layout (or the serialization of schedules/results it embeds) changes
#: incompatibly; readers treat any other version as a miss.  Version 2:
#: :func:`repro.portfolio.features.instance_signature` started hashing array
#: dtypes, so signatures (and therefore keys) of v1 entries are not
#: comparable — stale v1 entries must read as misses, never as hits.
CACHE_FORMAT_VERSION = 2

#: Name of the per-shard access-journal file.  A leading dot keeps it out of
#: the ``*.json`` entry namespace (and out of :meth:`SolutionCache.disk_stats`).
JOURNAL_NAME = ".journal"

#: Compact a shard's access journal (rewrite keeping only the last
#: occurrence of each live key) once an append leaves it past this size.
JOURNAL_COMPACT_BYTES = 256 * 1024

PathLike = Union[str, Path]


def _env_int(name: str) -> Optional[int]:
    """Optional integer knob from the environment (unset/invalid: ``None``)."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None

#: Process-wide default cache directory (CLI ``--cache-dir`` / REPRO_CACHE_DIR).
_DEFAULT_CACHE_DIR: Optional[str] = None
#: Whether this module wrote REPRO_CACHE_DIR itself, and what it displaced —
#: clearing the default must restore the user's own variable, not delete it.
_ENV_OVERRIDDEN = False
_ENV_SAVED: Optional[str] = None


def set_default_cache_dir(path: Optional[PathLike]) -> None:
    """Set (or clear, with ``None``) the process-wide default cache directory.

    Portfolio schedulers built with ``cache=default`` (and the CLI's
    ``--cache-dir`` flag) resolve through this hook.  The directory is also
    exported as ``REPRO_CACHE_DIR`` so that multiprocessing pool workers see
    it under *any* start method — with ``spawn`` (macOS/Windows) a worker
    re-imports this module and would otherwise come up with no default,
    silently disabling the cache for parallel batches.  Clearing restores
    whatever ``REPRO_CACHE_DIR`` held before this hook overrode it.
    """
    global _DEFAULT_CACHE_DIR, _ENV_OVERRIDDEN, _ENV_SAVED
    if path is not None:
        if not _ENV_OVERRIDDEN:
            _ENV_SAVED = os.environ.get("REPRO_CACHE_DIR")
            _ENV_OVERRIDDEN = True
        _DEFAULT_CACHE_DIR = str(path)
        os.environ["REPRO_CACHE_DIR"] = _DEFAULT_CACHE_DIR
    else:
        _DEFAULT_CACHE_DIR = None
        if _ENV_OVERRIDDEN:
            if _ENV_SAVED is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = _ENV_SAVED
            _ENV_OVERRIDDEN = False
            _ENV_SAVED = None


def default_cache_dir() -> Optional[str]:
    """The process-wide default cache directory, if any.

    Resolution order: :func:`set_default_cache_dir`, then the
    ``REPRO_CACHE_DIR`` environment variable, then ``None`` (caching off).
    """
    if _DEFAULT_CACHE_DIR is not None:
        return _DEFAULT_CACHE_DIR
    return os.environ.get("REPRO_CACHE_DIR") or None


@dataclass(frozen=True)
class CacheEntry:
    """One cached solution: the solve outcome plus its schedule.

    The schedule is the load-bearing half (a hit replays it instead of
    re-solving); the stored :class:`~repro.spec.SolveResult` is the
    introspection payload — ``portfolio-explain`` and services reading the
    cache directly get the full outcome without re-costing — and is ``None``
    when an entry predates a result-schema detail (never a reason to
    re-solve).
    """

    result: Optional[SolveResult]
    schedule: BspSchedule
    #: The scheduler spec the portfolio actually delegated to (for
    #: ``portfolio-explain`` and cache introspection).
    chosen: str = ""


class SolutionCache:
    """Content-addressed solution store with an in-process LRU layer.

    ``get``/``put`` never raise on cache corruption: an unreadable,
    malformed or version-incompatible entry is simply a miss.  ``hits`` /
    ``misses`` / ``stores`` / ``evictions`` count the traffic of this
    process.

    ``max_disk_bytes`` / ``max_disk_entries`` bound the on-disk tier
    (``None``, the default, means unbounded; the ``REPRO_CACHE_MAX_BYTES`` /
    ``REPRO_CACHE_MAX_ENTRIES`` environment variables supply process-wide
    defaults).  A :meth:`put` that leaves the directory over budget triggers
    best-effort LRU eviction — "best effort" because concurrent writers may
    momentarily overshoot; every writer converges the directory back under
    budget on its next store, and byte budgets admit at least the newest
    entry even when that entry alone exceeds them.
    """

    def __init__(
        self,
        root: PathLike,
        *,
        max_memory_entries: int = 128,
        max_disk_bytes: Optional[int] = None,
        max_disk_entries: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.max_memory_entries = int(max_memory_entries)
        if max_disk_bytes is None:
            max_disk_bytes = _env_int("REPRO_CACHE_MAX_BYTES")
        if max_disk_entries is None:
            max_disk_entries = _env_int("REPRO_CACHE_MAX_ENTRIES")
        self.max_disk_bytes = None if max_disk_bytes is None else int(max_disk_bytes)
        self.max_disk_entries = None if max_disk_entries is None else int(max_disk_entries)
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Per-instance metrics registry (merged into the daemon's ``metrics``
        #: wire op); the historical integer counters are read-only properties
        #: over these instruments.
        self.metrics = Metrics()
        self._hits = self.metrics.counter(
            "repro_cache_hits_total", help="Cache lookups served from LRU or disk"
        )
        self._misses = self.metrics.counter(
            "repro_cache_misses_total", help="Cache lookups that found no usable entry"
        )
        self._stores = self.metrics.counter(
            "repro_cache_stores_total", help="Entries written to the cache"
        )
        self._evictions = self.metrics.counter(
            "repro_cache_evictions_total", help="Entries evicted from the on-disk tier"
        )
        #: Running (entries, bytes) estimate of the on-disk tier, used to
        #: decide cheaply whether a put must walk the directory and evict.
        #: ``None`` until the first bounded put initializes it from disk.
        self._disk_usage: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Counters (Metrics-backed, read as plain ints for compatibility)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def stores(self) -> int:
        return int(self._stores.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    def _count_hit(self) -> None:
        self._hits.inc()
        if _trace.enabled():
            _trace.event("cache", hit=True)

    def _count_miss(self) -> None:
        self._misses.inc()
        if _trace.enabled():
            _trace.event("cache", hit=False)

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key(signature: str, scheduler_spec: str, seed: Optional[int]) -> str:
        """Digest identifying one (instance, scheduler spec, seed) solution."""
        payload = f"{signature}|{scheduler_spec}|{'' if seed is None else int(seed)}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_path(self, signature: str, scheduler_spec: str, seed: Optional[int]) -> Path:
        """On-disk location of the entry (exists only after a store)."""
        key = self.key(signature, scheduler_spec, seed)
        return self.root / signature[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(
        self, signature: str, scheduler_spec: str, seed: Optional[int] = None
    ) -> Optional[CacheEntry]:
        """Cached solution for the key, or ``None`` on a miss."""
        from ..experiments.persistence import schedule_from_dict

        key = self.key(signature, scheduler_spec, seed)
        payload = self._lru_get(key)
        if payload is None:
            path = self.entry_path(signature, scheduler_spec, seed)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, ValueError):
                self._count_miss()
                return None
            if (
                not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT_VERSION
                or payload.get("key") != key
            ):
                self._count_miss()
                return None
            self._lru_put(key, payload)
            # A disk read is an access: record it so eviction keeps hot
            # entries.  (In-process LRU hits never touch the filesystem and
            # are deliberately not journaled.)
            self._journal_record(path.parent, key)
        try:
            schedule = schedule_from_dict(payload["schedule"])
        except (KeyError, TypeError, ValueError):
            self._count_miss()
            return None
        try:
            result: Optional[SolveResult] = SolveResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            result = None
        entry = CacheEntry(result=result, schedule=schedule, chosen=payload.get("chosen", ""))
        self._count_hit()
        return entry

    def put(
        self,
        signature: str,
        scheduler_spec: str,
        seed: Optional[int],
        result: SolveResult,
        schedule: BspSchedule,
        *,
        chosen: str = "",
    ) -> Path:
        """Store one solution atomically; returns the entry path."""
        from ..experiments.persistence import schedule_to_dict

        key = self.key(signature, scheduler_spec, seed)
        payload: Dict[str, Any] = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "signature": signature,
            "scheduler": scheduler_spec,
            "seed": None if seed is None else int(seed),
            "chosen": chosen,
            "result": result.to_dict(),
            "schedule": schedule_to_dict(schedule),
        }
        path = self.entry_path(signature, scheduler_spec, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._lru_put(key, payload)
        self._stores.inc()
        self._journal_record(path.parent, key)
        self._account_store(len(text))
        return path

    # ------------------------------------------------------------------
    # In-process LRU layer
    # ------------------------------------------------------------------
    def _lru_get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._lru.get(key)
        if payload is not None:
            self._lru.move_to_end(key)
        return payload

    def _lru_put(self, key: str, payload: Dict[str, Any]) -> None:
        if self.max_memory_entries <= 0:
            return
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_memory_entries:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    # Access journal (per shard, append-only)
    # ------------------------------------------------------------------
    def _journal_record(self, shard_dir: Path, key: str) -> None:
        """Append one access record (best effort; a lost line only ages the key).

        A record is one ``key\\n`` line — far below ``PIPE_BUF``, so
        concurrent ``O_APPEND`` writers never interleave within a line.  The
        handle position after the append is the file size, which makes the
        compaction check free.
        """
        try:
            with (shard_dir / JOURNAL_NAME).open("a") as handle:
                handle.write(key + "\n")
                size = handle.tell()
        except OSError:
            return
        if size > JOURNAL_COMPACT_BYTES:
            self._compact_journal(shard_dir)

    @staticmethod
    def _journal_order(shard_dir: Path) -> Dict[str, int]:
        """``{key: index of its last access line}`` of one shard's journal.

        Larger index = more recently used.  Unreadable journals (or shards
        that never had one) yield an empty order — their entries rank
        coldest.
        """
        order: Dict[str, int] = {}
        try:
            with (shard_dir / JOURNAL_NAME).open() as handle:
                for index, line in enumerate(handle):
                    token = line.strip()
                    if token:
                        order[token] = index
        except OSError:
            pass
        return order

    def _compact_journal(self, shard_dir: Path) -> None:
        """Rewrite a shard journal keeping one line per live key, LRU-ordered.

        Atomic via temp file + ``os.replace``.  An access appended by a
        concurrent process between the read and the replace is lost, which
        merely makes that key look slightly colder — the journal is an
        eviction-ordering aid, not a ledger.
        """
        live = self._shard_keys(shard_dir)
        order = self._journal_order(shard_dir)
        keys = sorted((index, key) for key, index in order.items() if key in live)
        try:
            fd, tmp = tempfile.mkstemp(dir=shard_dir, prefix=".tmp-", suffix=".journal")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w") as handle:
                for _, key in keys:
                    handle.write(key + "\n")
            os.replace(tmp, shard_dir / JOURNAL_NAME)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @staticmethod
    def _shard_keys(shard_dir: Path) -> set:
        """Keys of the committed entries of one shard directory."""
        try:
            return {
                path.stem
                for path in shard_dir.iterdir()
                if path.suffix == ".json" and not path.name.startswith(".tmp-")
            }
        except OSError:
            return set()

    # ------------------------------------------------------------------
    # Size-bounded eviction
    # ------------------------------------------------------------------
    def _account_store(self, entry_bytes: int) -> None:
        """Update the disk-usage estimate after a store; evict when over budget.

        The estimate deliberately over-counts (an overwritten key is counted
        again): over-counting triggers an eviction pass that recomputes the
        truth from disk, while under-counting could let the directory grow
        past the budget unnoticed.
        """
        if self.max_disk_bytes is None and self.max_disk_entries is None:
            return
        if self._disk_usage is None:
            on_disk = self.disk_stats()
            self._disk_usage = (on_disk["entries"], on_disk["bytes"])
        else:
            entries, total = self._disk_usage
            self._disk_usage = (entries + 1, total + entry_bytes)
        entries, total = self._disk_usage
        over_bytes = self.max_disk_bytes is not None and total > self.max_disk_bytes
        over_entries = self.max_disk_entries is not None and entries > self.max_disk_entries
        if over_bytes or over_entries:
            self.evict()

    def evict(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Delete least-recently-used entries until the cache fits the budget.

        ``max_bytes`` / ``max_entries`` default to the instance budgets.
        Entries are ranked by their last access recorded in the per-shard
        journals (journal position is scaled to the shard's journal length so
        shards of different traffic compare; entries with no journal record
        rank coldest, ties break on the key — deterministic across runs).
        Unlinks are best effort: an entry another process already evicted is
        simply skipped.  With ``dry_run`` nothing is deleted and the report
        shows what would happen.  Shard journals are compacted afterwards.

        Returns a report dict: ``scanned_entries`` / ``scanned_bytes`` /
        ``evicted_entries`` / ``evicted_bytes`` / ``remaining_entries`` /
        ``remaining_bytes``.
        """
        if max_bytes is None:
            max_bytes = self.max_disk_bytes
        if max_entries is None:
            max_entries = self.max_disk_entries

        ranked: List[Tuple[float, str, Path, int]] = []
        touched_shards: List[Path] = []
        try:
            shard_dirs = sorted(p for p in self.root.iterdir() if p.is_dir())
        except OSError:
            shard_dirs = []
        for shard in shard_dirs:
            order = self._journal_order(shard)
            span = float(max(len(order), 1))
            try:
                paths = sorted(shard.iterdir())
            except OSError:
                continue
            saw_entry = False
            for path in paths:
                if path.suffix != ".json" or path.name.startswith(".tmp-"):
                    continue
                try:
                    size = path.stat().st_size
                except OSError:
                    continue  # concurrently evicted/replaced
                key = path.stem
                last = order.get(key)
                recency = -1.0 if last is None else (last + 1) / span
                ranked.append((recency, key, path, size))
                saw_entry = True
            if saw_entry:
                touched_shards.append(shard)

        total_entries = len(ranked)
        total_bytes = sum(size for _, _, _, size in ranked)
        scanned_entries, scanned_bytes = total_entries, total_bytes
        ranked.sort(key=lambda item: (item[0], item[1]))

        evicted_entries = 0
        evicted_bytes = 0
        for _, _, path, size in ranked:
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            over_entries = max_entries is not None and total_entries > max_entries
            if not (over_bytes or over_entries):
                break
            if total_entries <= 1 and not over_entries:
                break  # a byte budget never evicts the sole (newest) entry
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:
                    pass  # already gone: still leaves the directory smaller
            total_entries -= 1
            total_bytes -= size
            evicted_entries += 1
            evicted_bytes += size

        if not dry_run:
            for shard in touched_shards:
                self._compact_journal(shard)
            self._evictions.inc(evicted_entries)
            self._disk_usage = (total_entries, total_bytes)
        return {
            "scanned_entries": scanned_entries,
            "scanned_bytes": scanned_bytes,
            "evicted_entries": evicted_entries,
            "evicted_bytes": evicted_bytes,
            "remaining_entries": total_entries,
            "remaining_bytes": total_bytes,
        }

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters of this process, plus the LRU occupancy.

        This is the per-session telemetry surfaced by ``repro cache-stats``
        and the serve daemon's ``stats`` endpoint; on-disk totals are the
        separate (directory-walking) :meth:`disk_stats`.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "lru_entries": len(self._lru),
            "lru_capacity": self.max_memory_entries,
        }

    def disk_stats(self) -> Dict[str, int]:
        """On-disk totals: entry count, payload bytes, shard directories.

        Walks the cache root (missing root: all zeros).  In-flight temp
        files of concurrent writers (``.tmp-*``) are not counted — only
        fully committed entries — and only directories actually holding
        committed entries count as shards, so a stray subdirectory (editor
        droppings, an emptied-out shard) cannot inflate the telemetry.
        """
        entries = 0
        total_bytes = 0
        shards = 0
        try:
            shard_dirs = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            shard_dirs = []
        for shard in shard_dirs:
            shard_entries = 0
            try:
                for path in shard.iterdir():
                    if path.name.startswith(".tmp-") or path.suffix != ".json":
                        continue
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        continue  # concurrently evicted/replaced
                    shard_entries += 1
            except OSError:
                continue
            entries += shard_entries
            if shard_entries:
                shards += 1
        return {"entries": entries, "bytes": total_bytes, "shards": shards}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SolutionCache(root={str(self.root)!r}, {self.stats()})"
