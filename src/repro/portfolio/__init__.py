"""Portfolio scheduling: per-instance algorithm selection plus solution caching.

The paper's evaluation shows that no single scheduler dominates across
instance families, size tiers and machine models.  This subsystem turns that
finding into an operational scheduler:

* :mod:`repro.portfolio.features` — a deterministic instance featurizer and
  the canonical content signature of a (DAG, machine) pair,
* :mod:`repro.portfolio.selector` — rule-based selection seeded from the
  paper's table winners, budget-aware successive-halving racing, and the
  :class:`PortfolioScheduler` tying both to the registry,
* :mod:`repro.portfolio.cache` — a content-addressed on-disk solution cache
  (atomic writes, versioned format, in-process LRU) serving identical
  re-solves without re-running any scheduler.

The subsystem is reachable as the registry entry ``portfolio(...)``::

    from repro import solve, SolveRequest, ProblemSpec, DagSpec, MachineSpec

    spec = ProblemSpec(dag=DagSpec.generator("spmv", n=20, q=0.25, seed=1),
                       machine=MachineSpec(P=4, g=2, l=5))
    solve(SolveRequest(spec=spec, scheduler="portfolio(cache='/tmp/repro-cache')"))
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    CacheEntry,
    SolutionCache,
    default_cache_dir,
    set_default_cache_dir,
)
from .features import InstanceFeatures, extract_features, instance_signature
from .selector import (
    DEFAULT_RACE_CANDIDATES,
    PortfolioScheduler,
    RaceOutcome,
    SelectionRule,
    RULES,
    race,
    select_scheduler,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheEntry",
    "SolutionCache",
    "default_cache_dir",
    "set_default_cache_dir",
    "InstanceFeatures",
    "extract_features",
    "instance_signature",
    "DEFAULT_RACE_CANDIDATES",
    "PortfolioScheduler",
    "RaceOutcome",
    "SelectionRule",
    "RULES",
    "race",
    "select_scheduler",
]
