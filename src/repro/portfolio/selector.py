"""Portfolio selection: feature rules, budget-aware racing, and the scheduler.

Two selection modes back the ``portfolio(...)`` registry entry:

``rules``
    A deterministic decision list mapping feature regions to registry spec
    strings, seeded from the paper's table-level winners: memory-bounded
    machines need the memory-aware greedy/HC family, communication-dominated
    NUMA instances favour communication-aware local search (HCcs), tiny
    instances afford full hill climbing, huge instances only the cheap list
    schedulers, and coarse database DAGs (few nodes, heavy weights) go to
    the ETF list scheduler that handles their wide weight spread well.

``race``
    Successive halving over an explicit candidate list under a wall-clock
    budget: every candidate solves the instance with a slice of the budget,
    the better half survives into the next rung with twice the per-candidate
    budget, until one candidate (or the budget) remains.  Candidates run
    through :class:`~repro.experiments.runner.ParallelRunner`, so ``jobs > 1``
    races concurrently; invalid or failing candidates are eliminated instead
    of failing the race.

:class:`PortfolioScheduler` wraps both modes behind the ordinary
:class:`~repro.scheduler.Scheduler` interface and adds the content-addressed
solution cache: with a ``cache`` directory every solved instance is stored
under ``(instance signature, portfolio spec, seed)`` and an identical
re-solve returns the stored schedule without invoking any underlying
scheduler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler, SchedulingError
from .cache import SolutionCache, default_cache_dir
from .features import InstanceFeatures, extract_features, instance_signature

__all__ = [
    "DEFAULT_RACE_CANDIDATES",
    "SelectionRule",
    "RULES",
    "PortfolioScheduler",
    "RaceOutcome",
    "race",
    "select_scheduler",
]


# ----------------------------------------------------------------------
# Rule-based selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionRule:
    """One row of the decision list: a predicate over features and a spec."""

    name: str
    description: str
    spec: str
    #: Predicate deciding whether this rule fires for a feature vector.
    predicate: object

    def matches(self, features: InstanceFeatures) -> bool:
        return bool(self.predicate(features))


#: Size-tier boundaries (node counts) used by the rules, matching the
#: paper's dataset tiers at reduced scale.
_TINY_MAX = 80
_LARGE_MIN = 1500

#: Effective-CCR threshold above which an instance counts as
#: communication-dominated (the multilevel/HCcs regime, Appendix A.5) —
#: the same default the CCR-based adaptive scheduler uses.
_COMM_HEAVY_CCR = 8.0

#: The decision list of ``mode=rules``, evaluated top to bottom; the first
#: matching rule wins.  Every spec on the right-hand side is deterministic,
#: so rules-mode portfolio runs are reproducible end to end.
RULES: Tuple[SelectionRule, ...] = (
    SelectionRule(
        name="memory-bounded-tiny",
        description="memory-bounded machine, tiny instance: memory-aware greedy "
        "placement is already near-optimal and always feasible",
        spec="greedy-mem",
        predicate=lambda f: f.memory_bound_min > 0 and f.num_nodes <= 40,
    ),
    SelectionRule(
        name="memory-bounded",
        description="memory-bounded machine: hill climbing on a memory-aware "
        "greedy start (moves filtered to the feasible region)",
        spec="hc(init=greedy-mem)",
        predicate=lambda f: f.memory_bound_min > 0,
    ),
    SelectionRule(
        name="huge",
        description="huge instance: only the near-linear-time list schedulers "
        "are affordable; BL-EST handles NUMA coefficients",
        spec="bl-est",
        predicate=lambda f: f.num_nodes >= _LARGE_MIN,
    ),
    SelectionRule(
        name="coarse-database",
        description="coarse database DAG (few nodes, heavy per-node weights, "
        "wide weight spread): ETF places the dominant nodes earliest",
        spec="etf",
        predicate=lambda f: f.num_nodes <= 120 and f.avg_work >= 50.0,
    ),
    SelectionRule(
        name="comm-heavy-numa",
        description="communication-dominated NUMA instance: "
        "communication-schedule hill climbing exploits the lambda matrix",
        spec="hccs(init=bspg)",
        predicate=lambda f: not f.numa_uniform and f.effective_ccr >= _COMM_HEAVY_CCR,
    ),
    SelectionRule(
        name="source-rich",
        description="source-heavy DAG (wide independent first layer, the "
        "spmv/exp/cg/kNN shape): the source-partition initializer seeds "
        "hill climbing better than BSPg",
        spec="hc(init=source)",
        predicate=lambda f: f.num_nodes > 0 and f.num_sources >= 0.1 * f.num_nodes,
    ),
    SelectionRule(
        name="deep-chain",
        description="deep, narrow DAG: the source-partition initializer tracks "
        "the chain structure; HC cleans up",
        spec="hc(init=source)",
        predicate=lambda f: f.depth > 0 and f.avg_width < 2.0,
    ),
    SelectionRule(
        name="tiny",
        description="tiny instance: full hill climbing over a BSPg start is "
        "affordable and beats every one-shot baseline",
        spec="hc(init=bspg)",
        predicate=lambda f: f.num_nodes <= _TINY_MAX,
    ),
    SelectionRule(
        name="default",
        description="default regime (small .. large, compute-dominated): hill "
        "climbing on the BSPg greedy initialization",
        spec="hc(init=bspg)",
        predicate=lambda f: True,
    ),
)


def select_scheduler(
    features: InstanceFeatures,
    *,
    candidates: Optional[Sequence[str]] = None,
) -> Tuple[str, SelectionRule]:
    """The registry spec the rules choose for a feature vector.

    With ``candidates`` the decision list is restricted to rules whose spec
    is in the candidate set (the last rule's spec falls back to the first
    candidate if no rule survives the restriction).  Returns the chosen spec
    and the rule that fired.
    """
    allowed = None
    if candidates is not None:
        allowed = {c.strip().lower() for c in candidates}
    for rule in RULES:
        if allowed is not None and rule.spec.lower() not in allowed:
            continue
        if rule.matches(features):
            return rule.spec, rule
    if not candidates:
        raise ValueError("select_scheduler needs a non-empty candidate set")
    fallback = SelectionRule(
        name="candidate-fallback",
        description="no rule spec is in the candidate set; first candidate wins",
        spec=tuple(candidates)[0],
        predicate=lambda f: True,
    )
    return fallback.spec, fallback


# ----------------------------------------------------------------------
# Budget-aware racing (successive halving)
# ----------------------------------------------------------------------
#: Default candidate set of ``mode=race`` — the deterministic spread of the
#: registry: cheap list schedulers, the level-set baseline, and the two
#: local-search families on a greedy start.
DEFAULT_RACE_CANDIDATES: Tuple[str, ...] = (
    "bl-est",
    "etf",
    "hdagg",
    "hc(init=bspg)",
    "hccs(init=bspg)",
)


@dataclass
class RaceOutcome:
    """Result of one race: the winner plus the full elimination history."""

    winner: str
    schedule: BspSchedule
    cost: float
    #: Best observed cost per candidate spec (``inf`` for failed candidates).
    costs: Dict[str, float]
    #: Candidate specs in elimination order (losers first, winner last).
    elimination_order: List[str]
    rounds: int


def _race_candidates_once(
    dag: ComputationalDAG,
    machine: BspMachine,
    specs: Sequence[str],
    *,
    time_limit: Optional[float],
    jobs: Optional[int],
) -> Dict[str, Tuple[float, Optional[BspSchedule]]]:
    """Run each candidate once (optionally wall-clock limited), tolerantly.

    Returns ``spec -> (cost, schedule)``; a candidate that raises or returns
    an invalid schedule gets ``(inf, None)`` instead of ending the race.
    """
    from ..experiments.runner import ParallelRunner, WorkItem
    from ..registry import canonical_scheduler_spec

    # Work items are built directly on the in-memory instance; wrapping it
    # in an inline ProblemSpec per rung would copy the whole DAG for nothing.
    items = [
        WorkItem(
            index=k,
            instance=0,
            dag=dag,
            machine=machine,
            scheduler=canonical_scheduler_spec(spec, time_budget=time_limit),
            label=spec,
            keep_schedule=True,
        )
        for k, spec in enumerate(specs)
    ]
    # Default to serial execution (not the engine-wide REPRO_JOBS default):
    # a race may itself be running inside a ParallelRunner worker process,
    # which must not spawn a nested pool.  ``portfolio(jobs=N)`` opts in.
    runner = ParallelRunner(jobs if jobs is not None else 1, tolerant=True)
    results = runner.execute(items)
    outcome: Dict[str, Tuple[float, Optional[BspSchedule]]] = {}
    for spec, result in zip(specs, results):
        if not result.valid or result.schedule is None:
            outcome[spec] = (float("inf"), None)
        else:
            outcome[spec] = (float(result.schedule.cost()), result.schedule)
    return outcome


def race(
    dag: ComputationalDAG,
    machine: BspMachine,
    candidates: Sequence[str] = DEFAULT_RACE_CANDIDATES,
    *,
    budget: Optional[float] = None,
    jobs: Optional[int] = None,
) -> RaceOutcome:
    """Successive-halving race over ``candidates``; best valid schedule wins.

    The wall-clock ``budget`` (seconds) is split across halving rungs: rung
    0 runs every candidate with an equal slice, then the better half
    advances with a doubled per-candidate slice, until one candidate is left
    or the budget is exhausted (whichever comes first; without a budget the
    race is a single unlimited rung).  Candidates whose schedulers do not
    accept a ``time_limit`` run unbounded and are simply not re-run on later
    rungs — their cost cannot improve.
    """
    from ..registry import scheduler_info

    specs = list(dict.fromkeys(candidates))
    if not specs:
        raise ValueError("race needs at least one candidate scheduler spec")

    start = time.perf_counter()
    best: Dict[str, Tuple[float, Optional[BspSchedule]]] = {}
    elimination: List[str] = []
    rounds = 0

    if budget is None:
        best = _race_candidates_once(dag, machine, specs, time_limit=None, jobs=jobs)
        survivors = sorted(specs, key=lambda s: best[s][0])
        elimination = list(reversed(survivors[1:]))
        rounds = 1
    else:
        survivors = specs
        per_candidate = max(float(budget) / max(len(specs) * 2, 1), 0.05)
        while len(survivors) > 1:
            remaining = float(budget) - (time.perf_counter() - start)
            if rounds > 0 and remaining <= 0:
                break
            rung_limit = min(per_candidate, max(remaining, 0.05)) if rounds > 0 else per_candidate
            # Only wall-clock-limitable candidates benefit from a re-run
            # with a larger slice; the rest keep their rung-0 result.
            to_run = [
                s
                for s in survivors
                if s not in best or scheduler_info(s).accepts("time_limit")
            ]
            if to_run:
                outcome = _race_candidates_once(
                    dag, machine, to_run, time_limit=rung_limit, jobs=jobs
                )
                for spec, (cost, schedule) in outcome.items():
                    prev = best.get(spec)
                    if prev is None or cost < prev[0]:
                        best[spec] = (cost, schedule)
            rounds += 1
            ranked = sorted(survivors, key=lambda s: best[s][0])
            keep = max(1, len(ranked) // 2)
            eliminated = ranked[keep:]
            elimination.extend(reversed(eliminated))
            survivors = ranked[:keep]
            per_candidate *= 2.0
        if len(survivors) == 1 and survivors[0] not in best:
            # A single-candidate race still honours the budget: whatever
            # wall-clock remains is the candidate's limit.
            remaining = max(float(budget) - (time.perf_counter() - start), 0.05)
            best[survivors[0]] = _race_candidates_once(
                dag, machine, survivors, time_limit=remaining, jobs=jobs
            )[survivors[0]]
            rounds += 1

    winner = min(best, key=lambda s: best[s][0])
    cost, schedule = best[winner]
    if schedule is None:
        raise SchedulingError(
            "no race candidate produced a valid schedule "
            f"(candidates: {', '.join(specs)})"
        )
    # A budget can expire with several survivors left: record the
    # non-winning ones too (costliest first), so the elimination order
    # always lists every raced candidate with the winner last.
    leftovers = [s for s in best if s != winner and s not in elimination]
    elimination.extend(sorted(leftovers, key=lambda s: -best[s][0]))
    elimination.append(winner)
    return RaceOutcome(
        winner=winner,
        schedule=schedule,
        cost=cost,
        costs={spec: result[0] for spec, result in best.items()},
        elimination_order=elimination,
        rounds=rounds,
    )


# ----------------------------------------------------------------------
# The portfolio scheduler
# ----------------------------------------------------------------------
class PortfolioScheduler(Scheduler):
    """Per-instance scheduler selection with an optional solution cache.

    ``mode="rules"`` picks a registry spec from the feature-based decision
    list; ``mode="race"`` races the ``candidates`` under ``budget`` seconds.
    With a ``cache`` directory (or a process default, see
    :func:`repro.portfolio.cache.set_default_cache_dir`), solved instances
    are stored content-addressed and an identical re-solve is served from
    the cache without invoking any underlying scheduler.
    """

    name = "portfolio"

    def __init__(
        self,
        mode: str = "rules",
        budget: Optional[float] = None,
        candidates: Optional[Sequence[str]] = None,
        cache: Optional[Union[str, SolutionCache]] = None,
        seed: Optional[int] = None,
        jobs: Optional[int] = None,
    ) -> None:
        mode = str(mode).strip().lower()
        if mode not in ("rules", "race"):
            raise ValueError(f"unknown portfolio mode {mode!r}; expected 'rules' or 'race'")
        self.mode = mode
        self.budget = float(budget) if budget is not None else None
        if candidates is not None and not tuple(candidates):
            raise ValueError(
                "portfolio candidates must be non-empty when given "
                "(omit the parameter to use the defaults)"
            )
        self.candidates = tuple(candidates) if candidates is not None else None
        self.seed = int(seed) if seed is not None else None
        self.jobs = jobs
        if isinstance(cache, SolutionCache):
            self._cache: Optional[SolutionCache] = cache
            self.cache_dir: Optional[str] = str(cache.root)
        else:
            root = str(cache) if cache is not None else default_cache_dir()
            self.cache_dir = root
            self._cache = SolutionCache(root) if root else None
        #: The spec / rule / race outcome of the most recent schedule() call
        #: (introspection surface of ``repro portfolio-explain``).
        self.last_chosen: Optional[str] = None
        self.last_rule: Optional[SelectionRule] = None
        self.last_race: Optional[RaceOutcome] = None
        self.last_cache_hit: bool = False
        #: The full cache entry of the most recent hit (stored SolveResult
        #: + chosen spec), for explain/introspection consumers.
        self.last_cache_entry = None

    # ------------------------------------------------------------------
    @property
    def cache(self) -> Optional[SolutionCache]:
        return self._cache

    def spec_string(self) -> str:
        """Canonical registry spec of this portfolio configuration.

        This is the scheduler part of the cache key: two portfolio instances
        with the same configuration address the same cached solutions (the
        cache directory itself is deliberately not part of the key).
        """
        from ..registry import format_scheduler_spec

        kwargs: Dict[str, object] = {}
        if self.mode != "rules":
            kwargs["mode"] = self.mode
        if self.budget is not None:
            kwargs["budget"] = self.budget
        if self.candidates is not None:
            kwargs["candidates"] = tuple(self.candidates)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return format_scheduler_spec("portfolio", kwargs)

    # ------------------------------------------------------------------
    def choose(
        self, dag: ComputationalDAG, machine: BspMachine
    ) -> Tuple[str, InstanceFeatures, Optional[SelectionRule]]:
        """Rules-mode choice for an instance (no solving, no cache).

        Returns ``(spec, features, rule)``; for ``mode="race"`` the returned
        spec is the race's candidate list description and ``rule`` is
        ``None`` (the choice is made by racing, not by features).
        """
        features = extract_features(dag, machine)
        if self.mode == "race":
            return "race(" + ", ".join(self._race_candidates()) + ")", features, None
        spec, rule = select_scheduler(features, candidates=self.candidates)
        return spec, features, rule

    def _race_candidates(self) -> Sequence[str]:
        return self.candidates if self.candidates else DEFAULT_RACE_CANDIDATES

    # ------------------------------------------------------------------
    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        self.last_chosen = None
        self.last_rule = None
        self.last_race = None
        self.last_cache_hit = False
        self.last_cache_entry = None

        # The content hash is only the cache's address — without a cache,
        # skip the O(n+m) hashing entirely.
        signature = None
        if self._cache is not None:
            signature = instance_signature(dag, machine)
            entry = self._cache.get(signature, self.spec_string(), self.seed)
            if entry is not None:
                self.last_cache_hit = True
                self.last_cache_entry = entry
                self.last_chosen = entry.chosen or None
                return entry.schedule

        if self.mode == "race":
            outcome = race(
                dag,
                machine,
                self._race_candidates(),
                budget=self.budget,
                jobs=self.jobs,
            )
            self.last_race = outcome
            self.last_chosen = outcome.winner
            schedule = outcome.schedule
        else:
            from ..registry import canonical_scheduler_spec, make_scheduler

            features = extract_features(dag, machine)
            chosen, rule = select_scheduler(features, candidates=self.candidates)
            if self.budget is not None:
                # A rules-mode budget is a wall-clock limit on the delegate:
                # merged into its time_limit parameter when it accepts one
                # (the HC/HCcs family does), a no-op for one-shot baselines.
                chosen = canonical_scheduler_spec(chosen, time_budget=self.budget)
            self.last_chosen = chosen
            self.last_rule = rule
            schedule = make_scheduler(chosen).schedule_checked(dag, machine)

        if self._cache is not None:
            self._cache.put(
                signature,
                self.spec_string(),
                self.seed,
                self._result_for_cache(dag, machine, schedule),
                schedule,
                chosen=self.last_chosen or "",
            )
        return schedule

    # ------------------------------------------------------------------
    def _result_for_cache(
        self, dag: ComputationalDAG, machine: BspMachine, schedule: BspSchedule
    ) -> "SolveResult":
        """The deterministic SolveResult stored alongside the schedule."""
        from ..spec import MachineSpec, SolveResult

        breakdown = schedule.cost_breakdown()
        return SolveResult(
            scheduler=self.spec_string(),
            dag_name=dag.name,
            num_nodes=int(dag.n),
            machine=MachineSpec.from_machine(machine),
            total_cost=float(breakdown.total),
            work_cost=float(breakdown.work_cost),
            comm_cost=float(breakdown.comm_cost),
            latency_cost=float(breakdown.latency_cost),
            num_supersteps=int(breakdown.num_supersteps),
            valid=True,
            scheduler_description=f"portfolio[{self.last_chosen}]",
            deterministic=self.mode == "rules" and self.budget is None,
        )
