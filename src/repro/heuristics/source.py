"""Source: layer-by-layer initialization heuristic (paper Alg. 2).

In every iteration the heuristic takes the current source nodes of the (not
yet assigned part of the) DAG and forms a new superstep from them:

* in the first superstep the sources are clustered — two sources sharing a
  direct successor join the same cluster — and the clusters are dealt to
  processors round-robin, which keeps "siblings" together;
* in later supersteps the sources are sorted by decreasing work weight and
  dealt to processors round-robin, balancing the work cost;
* afterwards, any direct successor whose predecessors have all already been
  assigned to the *same* processor is pulled into the current superstep on
  that processor, avoiding unnecessary extra supersteps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler

__all__ = ["SourceScheduler"]


class SourceScheduler(Scheduler):
    """Layered round-robin initializer (the ``Source`` heuristic)."""

    name = "Source"

    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        n = dag.n
        P = machine.P
        proc = np.full(n, -1, dtype=np.int64)
        step = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

        remaining_parents = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
        assigned = np.zeros(n, dtype=bool)

        def mark_assigned(v: int, p: int, s: int) -> None:
            proc[v] = p
            step[v] = s
            assigned[v] = True
            for child in dag.children(v):
                remaining_parents[child] -= 1

        superstep = 0
        current_proc = 0
        while not assigned.all():
            sources = [v for v in range(n) if not assigned[v] and remaining_parents[v] == 0]
            if not sources:
                raise RuntimeError("Source heuristic found no available source nodes")

            if superstep == 0:
                clusters = self._cluster_initial_sources(dag, sources)
                for cluster in clusters:
                    for v in cluster:
                        mark_assigned(v, current_proc, superstep)
                    current_proc = (current_proc + 1) % P
            else:
                ordered = sorted(sources, key=lambda v: (-int(dag.work[v]), v))
                for v in ordered:
                    mark_assigned(v, current_proc, superstep)
                    current_proc = (current_proc + 1) % P

            # Pull in successors whose predecessors all live on one processor.
            for v in sources:
                for u in dag.children(v):
                    if assigned[u] or remaining_parents[u] != 0:
                        continue
                    parent_procs = {int(proc[w]) for w in dag.parents(u)}
                    if len(parent_procs) == 1 and -1 not in parent_procs:
                        mark_assigned(u, parent_procs.pop(), superstep)

            superstep += 1

        return BspSchedule(dag, machine, proc, step)

    @staticmethod
    def _cluster_initial_sources(dag: ComputationalDAG, sources: List[int]) -> List[List[int]]:
        """Group the initial sources: sources sharing a successor cluster together."""
        cluster_of: Dict[int, int] = {}
        clusters: List[List[int]] = []

        # Index sources by their successors so sharing is detected in one pass.
        by_successor: Dict[int, List[int]] = {}
        for v in sources:
            for u in dag.children(v):
                by_successor.setdefault(u, []).append(v)

        for _, members in sorted(by_successor.items()):
            if len(members) < 2:
                continue
            # Merge all members into the cluster of the first already-clustered
            # member, or create a new cluster.
            target: Optional[int] = None
            for v in members:
                if v in cluster_of:
                    target = cluster_of[v]
                    break
            if target is None:
                target = len(clusters)
                clusters.append([])
            for v in members:
                if v not in cluster_of:
                    cluster_of[v] = target
                    clusters[target].append(v)

        # Remaining sources become singleton clusters.
        for v in sources:
            if v not in cluster_of:
                cluster_of[v] = len(clusters)
                clusters.append([v])
        return [c for c in clusters if c]
