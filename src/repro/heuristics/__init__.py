"""Initialization heuristics for the scheduling framework (paper Section 4.2)."""

from .bspg import BspGreedyScheduler
from .source import SourceScheduler

__all__ = ["BspGreedyScheduler", "SourceScheduler"]
