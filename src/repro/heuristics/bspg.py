"""BSPg: the BSP-tailored greedy initialization heuristic (paper Alg. 1).

BSPg simulates concrete start/finish times inside each superstep (like a
classical greedy scheduler) but only ever assigns a node to a processor when
this is possible *without closing the current computation phase*: all of the
node's predecessors must already be available on that processor, i.e. they
were computed on the same processor or in an earlier superstep.  When at
least half of the processors become idle (no such node exists for them), the
superstep is closed and the nodes that were blocked on cross-processor data
become available to everyone in the next superstep.

Tie-breaking between candidate nodes uses the paper's score
``sum over predecessors u of c(u) / outdeg(u)`` restricted to predecessors
that (or whose successors) are already on the candidate processor — an
estimate of the communication that can be avoided in the future by keeping
the node local.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from ..scheduler import Scheduler

__all__ = ["BspGreedyScheduler"]


class BspGreedyScheduler(Scheduler):
    """Greedy BSP scheduler (the ``BSPg`` initializer of the paper)."""

    name = "BSPg"

    def __init__(self, idle_fraction: float = 0.5) -> None:
        """``idle_fraction``: close the superstep once this fraction of the
        processors can no longer be assigned work without communication."""
        if not (0.0 < idle_fraction <= 1.0):
            raise ValueError("idle_fraction must be in (0, 1]")
        self.idle_fraction = idle_fraction

    # ------------------------------------------------------------------
    def schedule(self, dag: ComputationalDAG, machine: BspMachine) -> BspSchedule:
        n = dag.n
        P = machine.P
        proc = np.full(n, -1, dtype=np.int64)
        step = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

        remaining_parents = np.array([dag.in_degree(v) for v in range(n)], dtype=np.int64)
        finished = np.zeros(n, dtype=bool)

        # Ready bookkeeping (see module docstring / paper Algorithm 1):
        #   ready      — all nodes whose predecessors have finished;
        #   ready_p[p] — ready nodes executable on p in the current superstep;
        #   ready_all  — ready nodes executable on any processor this superstep.
        ready: Set[int] = set()
        ready_p: List[Set[int]] = [set() for _ in range(P)]
        ready_all: Set[int] = set()

        for v in range(n):
            if remaining_parents[v] == 0:
                ready.add(v)
        ready_all = set(ready)

        superstep = 0
        end_step = False
        free = [True] * P
        # Min-heap of (finish_time, node, processor) of currently running nodes.
        running: List[Tuple[float, int, int]] = []
        assigned_count = 0
        now = 0.0

        def choose_node(p: int) -> Optional[int]:
            """Pick the next node for processor ``p`` (paper's ChooseNode)."""
            pool = ready_p[p] if ready_p[p] else ready_all
            if not pool:
                return None
            best_v = None
            best_score = -1.0
            for v in pool:
                score = 0.0
                for u in dag.parents(v):
                    on_p = proc[u] == p
                    if not on_p:
                        on_p = any(proc[w] == p for w in dag.children(u))
                    if on_p:
                        outdeg = dag.out_degree(u)
                        score += float(dag.comm[u]) / max(outdeg, 1)
                if score > best_score or (score == best_score and (best_v is None or v < best_v)):
                    best_score = score
                    best_v = v
            return best_v

        def assign(v: int, p: int, time: float) -> None:
            nonlocal assigned_count
            ready.discard(v)
            ready_all.discard(v)
            for q in range(P):
                ready_p[q].discard(v)
            proc[v] = p
            step[v] = superstep
            free[p] = False
            heapq.heappush(running, (time + float(dag.work[v]), v, p))
            assigned_count += 1

        def assignment_round(time: float) -> int:
            """Give work to free processors; return number of assignments."""
            made = 0
            progress = True
            while progress:
                progress = False
                for p in range(P):
                    if not free[p]:
                        continue
                    v = choose_node(p)
                    if v is not None:
                        assign(v, p, time)
                        made += 1
                        progress = True
            return made

        def idle_processors() -> int:
            return sum(
                1 for p in range(P) if free[p] and not ready_p[p] and not ready_all
            )

        def start_new_superstep() -> None:
            nonlocal superstep, end_step
            superstep += 1
            end_step = False
            for p in range(P):
                ready_p[p].clear()
            ready_all.clear()
            ready_all.update(ready)

        # Initial assignment at time 0.
        assignment_round(now)
        if not ready_all and idle_processors() >= self.idle_fraction * P:
            end_step = True

        while assigned_count < n or running:
            if not running:
                # Nothing is executing: either the superstep ended naturally
                # or nothing could be assigned; start the next superstep.
                if assigned_count >= n:
                    break
                start_new_superstep()
                made = assignment_round(now)
                if made == 0 and not running:
                    # Safety net: with the ready bookkeeping above this cannot
                    # happen for a DAG, but fail loudly rather than spin.
                    raise RuntimeError("BSPg made no progress")
                if not ready_all and idle_processors() >= self.idle_fraction * P:
                    end_step = True
                continue

            finish_time, v, p = heapq.heappop(running)
            now = finish_time
            finished[v] = True
            free[p] = True
            # Collect every node finishing at exactly this time before
            # assigning new work, mirroring the pseudocode's batch handling.
            batch = [(v, p)]
            while running and running[0][0] == finish_time:
                _, v2, p2 = heapq.heappop(running)
                finished[v2] = True
                free[p2] = True
                batch.append((v2, p2))

            for (node, node_proc) in batch:
                for child in dag.children(node):
                    remaining_parents[child] -= 1
                    if remaining_parents[child] == 0:
                        ready.add(child)
                        # The child may join the current superstep on the
                        # processor that owns all of its current-superstep
                        # predecessors.
                        ok = True
                        for u in dag.parents(child):
                            if step[u] == superstep and proc[u] != node_proc:
                                ok = False
                                break
                        if ok:
                            ready_p[node_proc].add(child)

            if not end_step:
                assignment_round(now)
                if not ready_all and idle_processors() >= self.idle_fraction * P:
                    end_step = True

        return BspSchedule(dag, machine, proc, step)
