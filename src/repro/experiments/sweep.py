"""Parameter sweeps over machines and datasets, with CSV export.

The paper's evaluation is a grid of (dataset, P, g, l, Delta) combinations;
this module provides the long-form version of that grid: one record per
(instance, machine, algorithm) with its cost and its ratio to a chosen
baseline.  The records can be exported to CSV for external plotting, which
is how the figures of the paper would typically be drawn.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..graphs.dag import ComputationalDAG
from ..pipeline.config import MultilevelConfig, PipelineConfig
from ..spec import MachineSpec
from .runner import InstanceResult, run_instance

__all__ = ["SweepRecord", "MachineSpec", "sweep", "records_to_csv"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SweepRecord:
    """One (instance, machine, algorithm) measurement."""

    dataset: str
    dag_name: str
    num_nodes: int
    P: int
    g: float
    l: float
    delta: float
    algorithm: str
    cost: float
    ratio_to_baseline: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "dag": self.dag_name,
            "n": self.num_nodes,
            "P": self.P,
            "g": self.g,
            "l": self.l,
            "delta": self.delta,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "ratio_to_baseline": self.ratio_to_baseline,
        }


def sweep(
    datasets: Dict[str, Sequence[ComputationalDAG]],
    machines: Iterable[MachineSpec],
    *,
    baseline: str = "Cilk",
    pipeline_config: Optional[PipelineConfig] = None,
    multilevel_config: Optional[MultilevelConfig] = None,
    include_list_baselines: bool = False,
    baselines_only: bool = False,
) -> List[SweepRecord]:
    """Run the full grid and return one record per algorithm measurement."""
    records: List[SweepRecord] = []
    for spec in machines:
        machine = spec.build()
        meta = spec.describe()
        for dataset_name, dags in datasets.items():
            for dag in dags:
                result: InstanceResult = run_instance(
                    dag,
                    machine,
                    pipeline_config=pipeline_config,
                    include_list_baselines=include_list_baselines,
                    multilevel_config=multilevel_config,
                    baselines_only=baselines_only,
                )
                baseline_cost = result.costs.get(baseline)
                for algorithm, cost in result.costs.items():
                    ratio = cost / baseline_cost if baseline_cost else float("nan")
                    records.append(
                        SweepRecord(
                            dataset=dataset_name,
                            dag_name=dag.name,
                            num_nodes=dag.n,
                            P=int(meta["P"]),
                            g=float(meta["g"]),
                            l=float(meta["l"]),
                            delta=float(meta["delta"]),
                            algorithm=algorithm,
                            cost=float(cost),
                            ratio_to_baseline=float(ratio),
                        )
                    )
    return records


def records_to_csv(records: Sequence[SweepRecord], path: PathLike) -> None:
    """Write sweep records to a CSV file (one row per record)."""
    records = list(records)
    path = Path(path)
    fieldnames = list(records[0].as_dict().keys()) if records else [
        "dataset", "dag", "n", "P", "g", "l", "delta", "algorithm", "cost", "ratio_to_baseline"
    ]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record.as_dict())
