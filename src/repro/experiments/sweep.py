"""Parameter sweeps over machines and datasets, with CSV export.

The paper's evaluation is a grid of (dataset, P, g, l, Delta) combinations —
extended here with the memory-constrained model's per-processor
``memory_bound`` dimension; this module provides the long-form version of
that grid: one record per (instance, machine, algorithm) with its cost and
its ratio to a chosen baseline.  The records can be exported to CSV for
external plotting, which is how the figures of the paper would typically be
drawn.

Baseline labels are resolved through the registry's canonical-label mapping
(case-insensitive, see :func:`repro.experiments.runner.resolve_cost_label`):
``baseline="cilk"`` and ``baseline="Cilk"`` are the same request, a baseline
that was not measured raises :class:`ValueError`, and a legitimately
zero-cost baseline yields ``inf`` ratios instead of NaN.

Memory-bounded machines need memory-aware algorithms (the classical
baselines produce schedules that fail validation when the bound binds), so
such grids are expressed with ``scheduler_specs``: a list of registry spec
strings (``["greedy-mem", "hc(init=greedy-mem)"]``) run instead of the
default baseline/pipeline label set.

The portfolio scheduler is a sweepable column like any other spec string —
``scheduler_specs=["cilk", "portfolio"]`` records the per-instance selection
(and, with a cache directory configured, shares its solution cache across
the whole grid).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..pipeline.config import MultilevelConfig, PipelineConfig
from ..registry import canonical_scheduler_spec
from ..spec import MachineSpec
from .runner import (
    InstanceResult,
    WorkItem,
    _cost_ratio,
    execute_work_item,
    resolve_cost_label,
    run_instance,
)

__all__ = ["SweepRecord", "MachineSpec", "ratio_to_baseline", "sweep", "records_to_csv"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SweepRecord:
    """One (instance, machine, algorithm) measurement."""

    dataset: str
    dag_name: str
    num_nodes: int
    P: int
    g: float
    l: float
    delta: float
    memory_bound: float
    algorithm: str
    cost: float
    ratio_to_baseline: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "dag": self.dag_name,
            "n": self.num_nodes,
            "P": self.P,
            "g": self.g,
            "l": self.l,
            "delta": self.delta,
            "memory_bound": self.memory_bound,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "ratio_to_baseline": self.ratio_to_baseline,
        }


def ratio_to_baseline(costs: Dict[str, float], algorithm: str, baseline: str) -> float:
    """Ratio of ``algorithm``'s cost to ``baseline``'s, both resolved
    case-insensitively against ``costs``.

    A baseline that was never measured is a user error and raises
    :class:`ValueError`; a zero-cost baseline yields ``inf`` for any
    positive cost (and ``1.0`` for an equally free one) — never NaN.
    """
    try:
        baseline_cost = costs[resolve_cost_label(costs, baseline)]
    except KeyError as exc:
        raise ValueError(
            f"baseline {baseline!r} was not measured; recorded algorithms: "
            f"{', '.join(costs) if costs else 'none'}"
        ) from exc
    cost = costs[resolve_cost_label(costs, algorithm)]
    return _cost_ratio(cost, baseline_cost)


def _run_scheduler_specs(
    dag: ComputationalDAG, machine: BspMachine, scheduler_specs: Sequence[str]
) -> InstanceResult:
    """Run registry spec strings on one instance; costs keyed by spec string.

    Work items are constructed directly from the prebuilt instance (what
    :meth:`WorkItem.from_request` reduces to when handed ``dag``/``machine``)
    — embedding the DAG in an inline problem spec per grid cell would be
    pure overhead.
    """
    merged = InstanceResult(dag_name=dag.name, num_nodes=dag.n, machine=machine)
    for k, spec in enumerate(scheduler_specs):
        item = WorkItem(
            index=k,
            instance=0,
            dag=dag,
            machine=machine,
            scheduler=canonical_scheduler_spec(spec),
            label=spec,
        )
        merged.costs.update(execute_work_item(item).costs)
    return merged


def sweep(
    datasets: Dict[str, Sequence[ComputationalDAG]],
    machines: Iterable[MachineSpec],
    *,
    baseline: str = "Cilk",
    pipeline_config: Optional[PipelineConfig] = None,
    multilevel_config: Optional[MultilevelConfig] = None,
    include_list_baselines: bool = False,
    baselines_only: bool = False,
    scheduler_specs: Optional[Sequence[str]] = None,
) -> List[SweepRecord]:
    """Run the full grid and return one record per algorithm measurement.

    With ``scheduler_specs`` the default baseline/pipeline label set is
    replaced by the given registry spec strings (one cost per spec, keyed by
    the spec string) — the entry point for memory-bounded grids, where only
    memory-aware schedulers produce valid schedules.  ``baseline`` then
    refers to one of the specs (case-insensitively).
    """
    records: List[SweepRecord] = []
    for spec in machines:
        machine = spec.build()
        meta = spec.describe()
        for dataset_name, dags in datasets.items():
            for dag in dags:
                if scheduler_specs is not None:
                    result = _run_scheduler_specs(dag, machine, scheduler_specs)
                else:
                    result = run_instance(
                        dag,
                        machine,
                        pipeline_config=pipeline_config,
                        include_list_baselines=include_list_baselines,
                        multilevel_config=multilevel_config,
                        baselines_only=baselines_only,
                    )
                for algorithm, cost in result.costs.items():
                    ratio = ratio_to_baseline(result.costs, algorithm, baseline)
                    records.append(
                        SweepRecord(
                            dataset=dataset_name,
                            dag_name=dag.name,
                            num_nodes=dag.n,
                            P=int(meta["P"]),
                            g=float(meta["g"]),
                            l=float(meta["l"]),
                            delta=float(meta["delta"]),
                            memory_bound=float(meta["memory_bound"]),
                            algorithm=algorithm,
                            cost=float(cost),
                            ratio_to_baseline=float(ratio),
                        )
                    )
    return records


def records_to_csv(records: Sequence[SweepRecord], path: PathLike) -> None:
    """Write sweep records to a CSV file (one row per record)."""
    records = list(records)
    path = Path(path)
    fieldnames = list(records[0].as_dict().keys()) if records else [
        "dataset", "dag", "n", "P", "g", "l", "delta", "memory_bound",
        "algorithm", "cost", "ratio_to_baseline",
    ]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record.as_dict())
