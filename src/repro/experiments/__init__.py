"""Experiment harness: datasets, runners and table/figure regeneration."""

from .datasets import (
    DATASET_RANGES,
    build_dataset,
    build_training_set,
    dataset_range,
    fit_fine_grained,
)
from .persistence import (
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
    save_experiment,
    schedule_from_dict,
    schedule_to_dict,
)
from .report import Table, format_percent, geometric_mean, improvement
from .sweep import MachineSpec, SweepRecord, records_to_csv, sweep
from .runner import (
    ExperimentResult,
    InstanceResult,
    run_experiment,
    run_instance,
    stage_ratio_summary,
)
from . import tables

__all__ = [
    "sweep",
    "SweepRecord",
    "MachineSpec",
    "records_to_csv",
    "DATASET_RANGES",
    "dataset_range",
    "build_dataset",
    "build_training_set",
    "fit_fine_grained",
    "Table",
    "geometric_mean",
    "improvement",
    "format_percent",
    "InstanceResult",
    "ExperimentResult",
    "run_instance",
    "run_experiment",
    "stage_ratio_summary",
    "tables",
    "save_experiment",
    "load_experiment",
    "experiment_to_dict",
    "experiment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
]
