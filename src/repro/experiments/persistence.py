"""Saving and loading experiment results.

The paper's artifact ships the raw data of its experiment runs alongside the
code; this module provides the same convenience for the reproduction: every
:class:`~repro.experiments.runner.ExperimentResult` (and schedules
themselves) can be serialized to JSON, so long experiment sweeps can be run
once and re-aggregated or re-plotted later without recomputation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Union

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.comm import CommSchedule
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule
from .runner import ExperimentResult, InstanceResult

__all__ = [
    "experiment_to_dict",
    "experiment_from_dict",
    "save_experiment",
    "load_experiment",
    "schedule_to_dict",
    "schedule_from_dict",
    "CheckpointWriter",
    "iter_checkpoint",
    "read_checkpoint",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Incremental work-item checkpoints (JSONL)
# ----------------------------------------------------------------------
class CheckpointWriter:
    """Append-only JSONL writer used by the parallel experiment engine.

    Every record is one completed work item; the file is flushed after each
    append so a crashed or interrupted sweep loses at most the in-flight
    items.  Re-opening the same path appends, which is what allows
    ``ParallelRunner(resume=True)`` to continue a partial run.
    """

    def __init__(self, path: PathLike, append: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a" if append else "w")

    def append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_checkpoint(path: PathLike) -> Iterator[dict]:
    """Stream the records of a JSONL checkpoint written by :class:`CheckpointWriter`.

    Yields one record dict at a time without materializing the whole file —
    resume over a multi-gigabyte sweep checkpoint stays at constant memory.
    Malformed lines are skipped rather than raised on: a process killed
    mid-append leaves a truncated final line, and the whole point of the
    checkpoint is to survive exactly that — the interrupted item simply
    re-runs.
    """
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def read_checkpoint(path: PathLike) -> List[dict]:
    """All records of a JSONL checkpoint, as a list (see :func:`iter_checkpoint`)."""
    return list(iter_checkpoint(path))


# ----------------------------------------------------------------------
# Machines
# ----------------------------------------------------------------------
def _machine_to_dict(machine: BspMachine) -> dict:
    payload = {
        "P": machine.P,
        "g": machine.g,
        "l": machine.l,
        "numa": np.asarray(machine.numa).tolist(),
    }
    # The memory bound participates in schedule validation (and therefore in
    # cached-solution identity), so a bounded machine must round-trip it.
    if machine.memory_bounds is not None:
        payload["memory_bound"] = np.asarray(machine.memory_bounds).tolist()
    return payload


def _machine_from_dict(data: dict) -> BspMachine:
    return BspMachine(P=int(data["P"]), g=float(data["g"]), l=float(data["l"]),
                      numa=np.asarray(data["numa"], dtype=float),
                      memory_bound=data.get("memory_bound"))


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: BspSchedule) -> dict:
    """JSON-serializable representation of a schedule (incl. its DAG)."""
    dag = schedule.dag
    dag_payload = {
        "name": dag.name,
        "n": dag.n,
        "edges": [list(e) for e in dag.edges],
        "work": np.asarray(dag.work).tolist(),
        "comm": np.asarray(dag.comm).tolist(),
    }
    # Memory weights default to the work weights; embed them only when they
    # differ, keeping the common case compact (mirrors DagSpec.from_dag).
    if not np.array_equal(np.asarray(dag.memory), np.asarray(dag.work)):
        dag_payload["memory"] = np.asarray(dag.memory).tolist()
    payload = {
        "dag": dag_payload,
        "machine": _machine_to_dict(schedule.machine),
        "proc": np.asarray(schedule.proc).tolist(),
        "step": np.asarray(schedule.step).tolist(),
        "comm_schedule": sorted(list(e) for e in schedule.comm) if schedule.comm is not None else None,
    }
    return payload


def schedule_from_dict(data: dict) -> BspSchedule:
    """Rebuild a schedule written by :func:`schedule_to_dict`."""
    dag_data = data["dag"]
    dag = ComputationalDAG(
        int(dag_data["n"]),
        [tuple(e) for e in dag_data["edges"]],
        dag_data["work"],
        dag_data["comm"],
        name=dag_data.get("name", "dag"),
        memory=dag_data.get("memory"),
    )
    machine = _machine_from_dict(data["machine"])
    comm = None
    if data.get("comm_schedule") is not None:
        comm = CommSchedule({tuple(int(x) for x in entry) for entry in data["comm_schedule"]})
    return BspSchedule(dag, machine, np.asarray(data["proc"]), np.asarray(data["step"]), comm)


# ----------------------------------------------------------------------
# Experiments
# ----------------------------------------------------------------------
def experiment_to_dict(experiment: ExperimentResult) -> dict:
    """JSON-serializable representation of an experiment run."""
    return {
        "machine_description": experiment.machine_description,
        "instances": [
            {
                "dag_name": inst.dag_name,
                "num_nodes": inst.num_nodes,
                "machine": _machine_to_dict(inst.machine),
                "costs": dict(inst.costs),
                "best_initializer": inst.best_initializer,
                "initializer_costs": dict(inst.initializer_costs),
            }
            for inst in experiment.instances
        ],
    }


def experiment_from_dict(data: dict) -> ExperimentResult:
    """Rebuild an experiment written by :func:`experiment_to_dict`."""
    experiment = ExperimentResult(machine_description=data["machine_description"])
    for inst in data["instances"]:
        experiment.instances.append(
            InstanceResult(
                dag_name=inst["dag_name"],
                num_nodes=int(inst["num_nodes"]),
                machine=_machine_from_dict(inst["machine"]),
                costs={k: float(v) for k, v in inst["costs"].items()},
                best_initializer=inst.get("best_initializer", ""),
                initializer_costs={k: float(v) for k, v in inst.get("initializer_costs", {}).items()},
            )
        )
    return experiment


def save_experiment(experiment: ExperimentResult, path: PathLike) -> None:
    """Write an experiment result to a JSON file."""
    Path(path).write_text(json.dumps(experiment_to_dict(experiment), indent=2))


def load_experiment(path: PathLike) -> ExperimentResult:
    """Read an experiment result from a JSON file."""
    return experiment_from_dict(json.loads(Path(path).read_text()))
