"""Small reporting utilities: geometric means and plain-text tables.

The paper aggregates per-instance cost ratios with the geometric mean (more
appropriate for ratios than the arithmetic mean) and reports improvements as
``1 - geomean(ratio)``.  The :class:`Table` helper renders the regenerated
tables as aligned plain text for the benchmark harness output and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["geometric_mean", "improvement", "format_percent", "Table"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (returns 0.0 for an empty input)."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))


def improvement(ratios: Iterable[float]) -> float:
    """Cost reduction implied by a set of (ours / baseline) cost ratios.

    ``0.25`` means "25% lower cost than the baseline on (geometric) average";
    negative values mean the baseline was better.
    """
    return 1.0 - geometric_mean(ratios)


def format_percent(value: float, digits: int = 0) -> str:
    """Format a fraction as a percentage string (``0.24 -> "24%"``)."""
    return f"{100.0 * value:.{digits}f}%"


@dataclass
class Table:
    """A small plain-text table with a title, column headers and string rows."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = [self.title, "=" * len(self.title), fmt(self.headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", "", "| " + " | ".join(self.headers) + " |"]
        lines.append("|" + "|".join(["---"] * len(self.headers)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
