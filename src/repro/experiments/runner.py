"""Experiment engine: run schedulers on instances and aggregate cost ratios.

The paper evaluates every scheduler by the ratio of its schedule cost to the
cost of the ``Cilk`` baseline on the same instance, aggregated over a dataset
with the geometric mean (Section 7).  This module provides the engine behind
all tables and figures:

* the unit of work is a :class:`WorkItem` — a ``(dag, machine,
  scheduler-name)`` tuple whose scheduler is resolved through
  :mod:`repro.registry` (baselines) or runs one of the two composite
  evaluations (the pipeline stages, the multilevel sweep),
* :class:`ParallelRunner` executes work items either in-process or on a
  ``multiprocessing`` pool (``jobs > 1``), with deterministic result
  ordering regardless of completion order and optional incremental
  persistence through :mod:`repro.experiments.persistence`,
* :func:`run_instance` / :func:`run_experiment` keep the historical
  aggregate API on top of the engine.

Every cost the engine records comes from a validated schedule: baselines go
through :meth:`Scheduler.schedule_checked` and the composite items validate
their final schedules, so an invalid schedule fails loudly instead of
producing a bogus table entry.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..model.schedule import BspSchedule, ScheduleValidationError
from ..multilevel.scheduler import multilevel_schedule
from ..obs import trace as _trace
from ..pipeline.config import MultilevelConfig, PipelineConfig
from ..pipeline.framework import run_pipeline
from ..registry import (
    TABLE_LABELS,
    canonical_scheduler_spec,
    canonical_table_label,
    make_scheduler,
    registry_name_for_label,
)
from ..scheduler import SchedulingError
from ..spec import ProblemSpec, SolveRequest
from .report import geometric_mean

__all__ = [
    "InstanceResult",
    "ExperimentResult",
    "REQUEST_BUILD_FAILURES",
    "WORK_ITEM_FAILURES",
    "WorkItem",
    "WorkItemResult",
    "ParallelRunner",
    "execute_work_item",
    "execute_work_item_tolerant",
    "resolve_cost_label",
    "run_instance",
    "run_experiment",
    "schedule_many",
    "set_default_jobs",
    "stage_ratio_summary",
]

#: Stage / algorithm labels used throughout the tables.  The baseline labels
#: are exactly the registry's table-label map, in table order.
BASELINE_LABELS = tuple(TABLE_LABELS)
STAGE_LABELS = ("Init", "HCcs", "ILP")

#: Pseudo scheduler names of the composite work items (everything else is a
#: registry name).
PIPELINE_ITEM = "pipeline"
MULTILEVEL_ITEM = "multilevel-sweep"

#: Exceptions that mean "this request could not even be *built*" (unknown
#: scheduler spec, bad generator parameters, unreadable hyperDAG file;
#: :class:`~repro.spec.SpecError` is a ``ValueError``).  Tolerant surfaces —
#: ``repro batch``, the serve daemon — map these to structured invalid-spec
#: outcomes instead of crashing the batch/worker.
REQUEST_BUILD_FAILURES = (ValueError, OSError)

#: Exceptions that mean "the scheduler ran and failed" on an executing work
#: item; :func:`execute_work_item_tolerant` converts exactly these into
#: invalid results.  Anything else is a bug and propagates.
WORK_ITEM_FAILURES = (SchedulingError, ScheduleValidationError, ValueError)


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
def resolve_cost_label(costs: Dict[str, float], label: str) -> str:
    """The key of ``costs`` that ``label`` refers to, case-insensitively.

    Resolution order: exact key, the registry's canonical table label
    (``"cilk"`` -> ``"Cilk"``), then a case-insensitive scan over the
    recorded keys (stage labels like ``"Init"``, spec strings).  Raises
    :class:`KeyError` when the label matches nothing — a missing label is a
    caller error and must not silently turn into a NaN ratio.
    """
    if label in costs:
        return label
    canonical = canonical_table_label(label)
    if canonical is not None and canonical in costs:
        return canonical
    lowered = label.strip().lower()
    for key in costs:
        if key.lower() == lowered:
            return key
    raise KeyError(
        f"label {label!r} not among the recorded costs "
        f"({', '.join(costs) if costs else 'none recorded'})"
    )


def _cost_ratio(cost: float, baseline_cost: float) -> float:
    """``cost / baseline_cost`` with explicit zero-baseline semantics.

    A zero-cost baseline is legitimate (e.g. an empty or zero-work
    instance): anything costlier is infinitely worse (``inf``), an equally
    free schedule is on par (``1.0``).  NaN is never returned.
    """
    if baseline_cost == 0:
        return float("inf") if cost > 0 else 1.0
    return cost / baseline_cost


@dataclass
class InstanceResult:
    """Costs of every algorithm on a single (DAG, machine) instance."""

    dag_name: str
    num_nodes: int
    machine: BspMachine
    costs: Dict[str, float] = field(default_factory=dict)
    best_initializer: str = ""
    initializer_costs: Dict[str, float] = field(default_factory=dict)

    def ratio(self, label: str, baseline: str = "Cilk") -> float:
        """Cost ratio of ``label`` to ``baseline`` on this instance.

        Labels are resolved through the registry's canonical-label mapping
        (case-insensitive), so ``ratio("ilp", "cilk")`` works; unknown
        labels raise :class:`KeyError`.
        """
        cost = self.costs[resolve_cost_label(self.costs, label)]
        baseline_cost = self.costs[resolve_cost_label(self.costs, baseline)]
        return _cost_ratio(cost, baseline_cost)


@dataclass
class ExperimentResult:
    """Results of one experiment configuration over a list of instances."""

    machine_description: str
    instances: List[InstanceResult] = field(default_factory=list)

    def labels(self) -> List[str]:
        labels: List[str] = []
        for inst in self.instances:
            for label in inst.costs:
                if label not in labels:
                    labels.append(label)
        return labels

    def mean_ratio(self, label: str, baseline: str = "Cilk") -> float:
        """Geometric-mean cost ratio of ``label`` to ``baseline``."""
        ratios = [inst.ratio(label, baseline) for inst in self.instances]
        return geometric_mean(ratios)

    def improvement(self, label: str, baseline: str) -> float:
        """Cost reduction of ``label`` relative to ``baseline`` (e.g. 0.24 = 24%)."""
        return 1.0 - self.mean_ratio(label, baseline)


# ----------------------------------------------------------------------
# Work items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkItem:
    """One unit of engine work: run one scheduler on one instance.

    ``scheduler`` is a registry name (resolved via
    :func:`repro.registry.make_scheduler`) or one of the two composite
    pseudo-names :data:`PIPELINE_ITEM` / :data:`MULTILEVEL_ITEM`.
    """

    index: int
    instance: int
    dag: ComputationalDAG
    machine: BspMachine
    scheduler: str
    label: Optional[str] = None
    pipeline_config: Optional[PipelineConfig] = None
    multilevel_config: Optional[MultilevelConfig] = None
    keep_schedule: bool = False

    @classmethod
    def from_request(
        cls,
        request: SolveRequest,
        *,
        index: int = 0,
        instance: int = 0,
        label: Optional[str] = None,
        keep_schedule: bool = False,
        dag: Optional[ComputationalDAG] = None,
        machine: Optional[BspMachine] = None,
    ) -> "WorkItem":
        """Build a work item from a declarative :class:`~repro.spec.SolveRequest`.

        This is the single path from the public request format into the
        engine: the scheduler spec is canonicalized (merging the request's
        seed / time budget, see
        :func:`repro.registry.canonical_scheduler_spec`) and the DAG and
        machine are materialized from the problem spec — or taken from
        ``dag`` / ``machine`` when the caller already holds the built
        instance (the experiment tables do, avoiding a rebuild).
        """
        scheduler = canonical_scheduler_spec(
            request.scheduler, seed=request.seed, time_budget=request.time_budget
        )
        return cls(
            index=index,
            instance=instance,
            dag=dag if dag is not None else request.spec.build_dag(),
            machine=machine if machine is not None else request.spec.build_machine(),
            scheduler=scheduler,
            label=label,
            keep_schedule=keep_schedule,
        )

    def signature(self) -> str:
        """Digest of everything that determines this item's costs.

        Stored in checkpoint records so that resume only reuses a record
        produced by an identical (dag, machine, scheduler, config) item —
        same index alone is not proof of same work.
        """
        dag, machine = self.dag, self.machine
        structure = hashlib.md5()
        structure.update(np.ascontiguousarray(dag.edge_sources).tobytes())
        structure.update(np.ascontiguousarray(dag.edge_targets).tobytes())
        structure.update(np.ascontiguousarray(dag.work).tobytes())
        structure.update(np.ascontiguousarray(dag.comm).tobytes())
        structure.update(np.ascontiguousarray(dag.memory).tobytes())
        structure.update(np.ascontiguousarray(machine.numa).tobytes())
        if machine.memory_bounds is not None:
            structure.update(np.ascontiguousarray(machine.memory_bounds).tobytes())
        payload = "|".join(
            (
                self.scheduler,
                dag.name,
                str(dag.n),
                str(machine.P),
                str(machine.g),
                str(machine.l),
                structure.hexdigest(),
                repr(self.pipeline_config),
                repr(self.multilevel_config),
            )
        )
        return hashlib.md5(payload.encode()).hexdigest()


@dataclass
class WorkItemResult:
    """Outcome of one work item (costs keyed by table label)."""

    index: int
    instance: int
    costs: Dict[str, float]
    best_initializer: str = ""
    initializer_costs: Dict[str, float] = field(default_factory=dict)
    schedule: Optional[BspSchedule] = None
    #: Identity of the work item that produced this result (used to match
    #: checkpoint records against the current run on resume).
    scheduler: str = ""
    dag_name: str = ""
    item_signature: str = ""
    #: Cost breakdown of the final schedule (work_cost / comm_cost /
    #: latency_cost / num_supersteps) — persisted in checkpoints so the API
    #: facade can rebuild full :class:`~repro.spec.SolveResult`\ s on resume
    #: without re-running the scheduler.
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds spent executing the item.
    seconds: float = 0.0
    #: Whether the item produced a valid schedule.  Only tolerant execution
    #: (see :func:`execute_work_item_tolerant`) ever records ``False`` —
    #: strict execution raises instead.
    valid: bool = True
    #: Failure description of an invalid tolerant result (empty when valid).
    error: str = ""

    def matches(self, item: WorkItem) -> bool:
        """True if this (checkpoint) result belongs to ``item``."""
        return (
            self.index == item.index
            and self.instance == item.instance
            and self.scheduler == item.scheduler
            and self.dag_name == item.dag.name
            and self.item_signature == item.signature()
        )

    def as_record(self) -> dict:
        """JSON-serializable checkpoint record (schedules are not persisted)."""
        return {
            "item": self.index,
            "instance": self.instance,
            "scheduler": self.scheduler,
            "dag": self.dag_name,
            "signature": self.item_signature,
            "costs": dict(self.costs),
            "best_initializer": self.best_initializer,
            "initializer_costs": dict(self.initializer_costs),
            "breakdown": dict(self.breakdown),
            "seconds": self.seconds,
            "valid": self.valid,
            "error": self.error,
        }

    @classmethod
    def from_record(cls, record: dict) -> "WorkItemResult":
        return cls(
            index=int(record["item"]),
            instance=int(record["instance"]),
            costs={k: float(v) for k, v in record["costs"].items()},
            best_initializer=record.get("best_initializer", ""),
            initializer_costs={
                k: float(v) for k, v in record.get("initializer_costs", {}).items()
            },
            scheduler=record.get("scheduler", ""),
            dag_name=record.get("dag", ""),
            item_signature=record.get("signature", ""),
            breakdown={k: float(v) for k, v in record.get("breakdown", {}).items()},
            seconds=float(record.get("seconds", 0.0)),
            valid=bool(record.get("valid", True)),
            error=str(record.get("error", "")),
        )


def _schedule_breakdown(schedule: BspSchedule) -> Dict[str, float]:
    """Flat cost breakdown of a schedule, as stored in checkpoint records."""
    breakdown = schedule.cost_breakdown()
    return {
        "total_cost": float(breakdown.total),
        "work_cost": float(breakdown.work_cost),
        "comm_cost": float(breakdown.comm_cost),
        "latency_cost": float(breakdown.latency_cost),
        "num_supersteps": float(breakdown.num_supersteps),
    }


def execute_work_item(item: WorkItem) -> WorkItemResult:
    """Run one work item; every recorded cost comes from a checked schedule."""
    with _trace.span(
        "solve", scheduler=item.scheduler, dag=item.dag.name, nodes=item.dag.n
    ) as tspan:
        result = _execute_work_item(item)
        if _trace.enabled():
            tspan.annotate(costs=dict(result.costs))
        return result


def _execute_work_item(item: WorkItem) -> WorkItemResult:
    dag, machine = item.dag, item.machine
    start = time.perf_counter()
    if item.scheduler == PIPELINE_ITEM:
        pipe = run_pipeline(dag, machine, item.pipeline_config)
        pipe.schedule.validate()
        return WorkItemResult(
            index=item.index,
            instance=item.instance,
            costs={
                "Init": pipe.init_cost,
                "HCcs": pipe.local_search_cost,
                "ILPpart": pipe.ilp_assignment_cost,
                "ILP": pipe.final_cost,
            },
            best_initializer=pipe.best_initializer,
            initializer_costs=dict(pipe.initializer_costs),
            schedule=pipe.schedule if item.keep_schedule else None,
            scheduler=item.scheduler,
            dag_name=dag.name,
            item_signature=item.signature(),
            breakdown=_schedule_breakdown(pipe.schedule),
            seconds=time.perf_counter() - start,
        )
    if item.scheduler == MULTILEVEL_ITEM:
        assert item.multilevel_config is not None
        ml_schedule, per_ratio = multilevel_schedule(dag, machine, item.multilevel_config)
        ml_schedule.validate()
        costs: Dict[str, float] = {"ML": float(ml_schedule.cost())}
        for ratio, cost in per_ratio.items():
            costs[f"ML@{ratio:g}"] = float(cost)
        return WorkItemResult(
            index=item.index,
            instance=item.instance,
            costs=costs,
            schedule=ml_schedule if item.keep_schedule else None,
            scheduler=item.scheduler,
            dag_name=dag.name,
            item_signature=item.signature(),
            breakdown=_schedule_breakdown(ml_schedule),
            seconds=time.perf_counter() - start,
        )
    scheduler = make_scheduler(item.scheduler)
    schedule = scheduler.schedule_checked(dag, machine)
    label = item.label if item.label is not None else scheduler.name
    return WorkItemResult(
        index=item.index,
        instance=item.instance,
        costs={label: float(schedule.cost())},
        schedule=schedule if item.keep_schedule else None,
        scheduler=item.scheduler,
        dag_name=dag.name,
        item_signature=item.signature(),
        breakdown=_schedule_breakdown(schedule),
        seconds=time.perf_counter() - start,
    )


def execute_work_item_tolerant(item: WorkItem) -> WorkItemResult:
    """Like :func:`execute_work_item`, but a scheduling failure is a result.

    A scheduler that raises :class:`~repro.scheduler.SchedulingError`,
    produces a schedule failing validation, or cannot even be built from its
    spec (``ValueError`` from the registry — unknown parameters, bad values)
    yields an *invalid* result — ``valid=False``, infinite cost, the error
    message preserved — instead of tearing down the whole batch.  Used by
    the ``repro batch`` surface (one bad request must not lose the other
    results) and by portfolio racing (a failing candidate is eliminated,
    not fatal).
    """
    start = time.perf_counter()
    try:
        return execute_work_item(item)
    except WORK_ITEM_FAILURES as exc:
        label = item.label if item.label is not None else item.scheduler
        return WorkItemResult(
            index=item.index,
            instance=item.instance,
            costs={label: float("inf")},
            scheduler=item.scheduler,
            dag_name=item.dag.name,
            item_signature=item.signature(),
            breakdown={
                "total_cost": float("inf"),
                "work_cost": 0.0,
                "comm_cost": 0.0,
                "latency_cost": 0.0,
                "num_supersteps": 0.0,
            },
            seconds=time.perf_counter() - start,
            valid=False,
            error=str(exc),
        )


def _instance_work_items(
    instance: int,
    next_index: int,
    dag: ComputationalDAG,
    machine: BspMachine,
    *,
    pipeline_config: Optional[PipelineConfig],
    include_list_baselines: bool,
    include_trivial: bool,
    multilevel_config: Optional[MultilevelConfig],
    baselines_only: bool,
) -> List[WorkItem]:
    """The work items of one instance, in table label order.

    Baseline items are constructed through the declarative request format
    (:class:`~repro.spec.SolveRequest` + :meth:`WorkItem.from_request`), the
    same path the :mod:`repro.api` facade uses; the prebuilt DAG and machine
    are passed through so nothing is re-materialized.
    """
    labels = ["Cilk", "HDagg"]
    if include_list_baselines:
        labels += ["BL-EST", "ETF"]
    if include_trivial:
        labels.append("Trivial")
    spec = ProblemSpec.from_instance(dag, machine)
    items = [
        WorkItem.from_request(
            SolveRequest(spec=spec, scheduler=registry_name_for_label(label)),
            index=next_index + k,
            instance=instance,
            label=label,
            dag=dag,
            machine=machine,
        )
        for k, label in enumerate(labels)
    ]
    if baselines_only:
        return items
    items.append(
        WorkItem(
            index=next_index + len(items),
            instance=instance,
            dag=dag,
            machine=machine,
            scheduler=PIPELINE_ITEM,
            pipeline_config=pipeline_config,
        )
    )
    if multilevel_config is not None:
        items.append(
            WorkItem(
                index=next_index + len(items),
                instance=instance,
                dag=dag,
                machine=machine,
                scheduler=MULTILEVEL_ITEM,
                multilevel_config=multilevel_config,
            )
        )
    return items


def _merge_instance(
    dag: ComputationalDAG, machine: BspMachine, results: Iterable[WorkItemResult]
) -> InstanceResult:
    """Fold the work-item results of one instance, in item-index order."""
    merged = InstanceResult(dag_name=dag.name, num_nodes=dag.n, machine=machine)
    for result in sorted(results, key=lambda r: r.index):
        merged.costs.update(result.costs)
        if result.best_initializer:
            merged.best_initializer = result.best_initializer
            merged.initializer_costs = dict(result.initializer_costs)
    return merged


# ----------------------------------------------------------------------
# The parallel engine
# ----------------------------------------------------------------------
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count of the experiment engine.

    ``None`` restores the built-in default (the ``REPRO_JOBS`` environment
    variable, falling back to serial execution).
    """
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is not None:
        return max(1, int(jobs))
    if _DEFAULT_JOBS is not None:
        return max(1, int(_DEFAULT_JOBS))
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


class ParallelRunner:
    """Execute work items serially or on a ``multiprocessing`` pool.

    Results are returned in work-item index order no matter in which order
    workers finish, so aggregate tables are identical for every ``jobs``
    value.  With a ``checkpoint`` path, every finished item is appended to a
    JSONL file as it completes (see
    :class:`repro.experiments.persistence.CheckpointWriter`); with
    ``resume=True``, items already present in that file are not re-run.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        tolerant: bool = False,
    ) -> None:
        self.jobs = _resolve_jobs(jobs)
        self.checkpoint = checkpoint
        self.resume = resume
        #: With ``tolerant=True`` scheduling failures become invalid results
        #: (see :func:`execute_work_item_tolerant`) instead of exceptions.
        self.tolerant = tolerant

    # ------------------------------------------------------------------
    def execute(self, items: Sequence[WorkItem]) -> List[WorkItemResult]:
        """Run all work items; the result list is index-aligned with ``items``."""
        from .persistence import CheckpointWriter, iter_checkpoint

        run_item = execute_work_item_tolerant if self.tolerant else execute_work_item
        done: Dict[int, WorkItemResult] = {}
        if self.resume and self.checkpoint and os.path.exists(self.checkpoint):
            item_by_index = {item.index: item for item in items}
            # Streamed, not materialized: resume over a huge checkpoint file
            # keeps constant memory (only matching records are retained).
            for record in iter_checkpoint(self.checkpoint):
                result = WorkItemResult.from_record(record)
                item = item_by_index.get(result.index)
                # Only reuse a record that provably belongs to this run's
                # work item; records from a different dataset / scheduler
                # set are ignored and the item is re-run.
                if item is not None and result.matches(item):
                    done[result.index] = result
        pending = [item for item in items if item.index not in done]

        # Without resume an existing checkpoint belongs to a previous run:
        # start the file fresh instead of appending a second run's records.
        writer = (
            CheckpointWriter(self.checkpoint, append=self.resume)
            if self.checkpoint
            else None
        )
        try:
            if self.jobs <= 1 or len(pending) <= 1:
                for item in pending:
                    result = run_item(item)
                    done[result.index] = result
                    if writer is not None:
                        writer.append(result.as_record())
            else:
                ctx = multiprocessing.get_context()
                with ctx.Pool(processes=min(self.jobs, len(pending))) as pool:
                    for result in pool.imap_unordered(run_item, pending):
                        done[result.index] = result
                        if writer is not None:
                            writer.append(result.as_record())
        finally:
            if writer is not None:
                writer.close()
        return [done[item.index] for item in items]

    # ------------------------------------------------------------------
    def run_experiment(
        self,
        dags: Sequence[ComputationalDAG],
        machine: BspMachine,
        *,
        pipeline_config: Optional[PipelineConfig] = None,
        include_list_baselines: bool = True,
        include_trivial: bool = True,
        multilevel_config: Optional[MultilevelConfig] = None,
        baselines_only: bool = False,
    ) -> ExperimentResult:
        """Run the full label set over a dataset and aggregate per instance."""
        items: List[WorkItem] = []
        for instance, dag in enumerate(dags):
            items.extend(
                _instance_work_items(
                    instance,
                    len(items),
                    dag,
                    machine,
                    pipeline_config=pipeline_config,
                    include_list_baselines=include_list_baselines,
                    include_trivial=include_trivial,
                    multilevel_config=multilevel_config,
                    baselines_only=baselines_only,
                )
            )
        results = self.execute(items)
        experiment = ExperimentResult(machine_description=machine.describe())
        for instance, dag in enumerate(dags):
            experiment.instances.append(
                _merge_instance(
                    dag, machine, [r for r in results if r.instance == instance]
                )
            )
        return experiment


# ----------------------------------------------------------------------
# Aggregate API (used by the tables, sweeps and tests)
# ----------------------------------------------------------------------
def run_instance(
    dag: ComputationalDAG,
    machine: BspMachine,
    *,
    pipeline_config: Optional[PipelineConfig] = None,
    include_list_baselines: bool = True,
    include_trivial: bool = True,
    multilevel_config: Optional[MultilevelConfig] = None,
    baselines_only: bool = False,
) -> InstanceResult:
    """Run the baselines (and the framework stages) on a single instance."""
    items = _instance_work_items(
        0,
        0,
        dag,
        machine,
        pipeline_config=pipeline_config,
        include_list_baselines=include_list_baselines,
        include_trivial=include_trivial,
        multilevel_config=multilevel_config,
        baselines_only=baselines_only,
    )
    return _merge_instance(dag, machine, [execute_work_item(item) for item in items])


def run_experiment(
    dags: Sequence[ComputationalDAG],
    machine: BspMachine,
    *,
    pipeline_config: Optional[PipelineConfig] = None,
    include_list_baselines: bool = True,
    multilevel_config: Optional[MultilevelConfig] = None,
    baselines_only: bool = False,
    jobs: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Run :func:`run_instance` over a dataset and collect the results.

    With ``jobs > 1`` (or a matching :func:`set_default_jobs` / ``REPRO_JOBS``
    default) the work items are executed on a process pool; aggregates are
    identical to the serial run either way.
    """
    runner = ParallelRunner(jobs, checkpoint=checkpoint, resume=resume)
    return runner.run_experiment(
        dags,
        machine,
        pipeline_config=pipeline_config,
        include_list_baselines=include_list_baselines,
        multilevel_config=multilevel_config,
        baselines_only=baselines_only,
    )


def schedule_many(
    dag: ComputationalDAG,
    machine: BspMachine,
    scheduler_names: Sequence[str],
    *,
    jobs: Optional[int] = None,
) -> List[Tuple[str, BspSchedule]]:
    """Run several registry schedulers on one instance, keeping the schedules.

    This is the engine entry point used by the command line: each scheduler
    spec is one work item (constructed through :class:`~repro.spec.SolveRequest`,
    so parameterized specs like ``"hc(max_moves=50)"`` work), executed in
    parallel when ``jobs > 1``, and the checked schedules come back in the
    order the names were given.
    """
    spec = ProblemSpec.from_instance(dag, machine)
    items = [
        WorkItem.from_request(
            SolveRequest(spec=spec, scheduler=name),
            index=k,
            instance=0,
            label=name,
            keep_schedule=True,
            dag=dag,
            machine=machine,
        )
        for k, name in enumerate(scheduler_names)
    ]
    results = ParallelRunner(jobs).execute(items)
    out: List[Tuple[str, BspSchedule]] = []
    for name, result in zip(scheduler_names, results):
        assert result.schedule is not None
        out.append((name, result.schedule))
    return out


def stage_ratio_summary(
    experiment: ExperimentResult, baseline: str = "Cilk", labels: Optional[Iterable[str]] = None
) -> Dict[str, float]:
    """Geometric-mean cost ratio (vs ``baseline``) for each requested label.

    This is the data behind the bar charts of Figures 5, 6 and 7: every
    algorithm's mean cost normalized to the Cilk baseline.
    """
    if labels is None:
        labels = experiment.labels()
    summary: Dict[str, float] = {}
    for label in labels:
        try:
            summary[label] = experiment.mean_ratio(label, baseline)
        except KeyError:
            continue
    return summary
