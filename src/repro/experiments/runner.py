"""Experiment runner: run schedulers on instances and aggregate cost ratios.

The paper evaluates every scheduler by the ratio of its schedule cost to the
cost of the ``Cilk`` baseline on the same instance, aggregated over a dataset
with the geometric mean (Section 7).  This module runs the baselines, the
pipeline stages and (optionally) the multilevel scheduler on a set of
instances and produces exactly those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.cilk import CilkScheduler
from ..baselines.hdagg import HDaggScheduler
from ..baselines.list_schedulers import BlEstScheduler, EtfScheduler
from ..baselines.trivial import TrivialScheduler
from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..multilevel.scheduler import multilevel_schedule
from ..pipeline.config import MultilevelConfig, PipelineConfig
from ..pipeline.framework import run_pipeline
from .report import geometric_mean

__all__ = [
    "InstanceResult",
    "ExperimentResult",
    "run_instance",
    "run_experiment",
    "stage_ratio_summary",
]

#: Stage / algorithm labels used throughout the tables.
BASELINE_LABELS = ("Cilk", "HDagg", "BL-EST", "ETF", "Trivial")
STAGE_LABELS = ("Init", "HCcs", "ILP")


@dataclass
class InstanceResult:
    """Costs of every algorithm on a single (DAG, machine) instance."""

    dag_name: str
    num_nodes: int
    machine: BspMachine
    costs: Dict[str, float] = field(default_factory=dict)
    best_initializer: str = ""
    initializer_costs: Dict[str, float] = field(default_factory=dict)

    def ratio(self, label: str, baseline: str = "Cilk") -> float:
        """Cost ratio of ``label`` to ``baseline`` on this instance."""
        return self.costs[label] / self.costs[baseline]


@dataclass
class ExperimentResult:
    """Results of one experiment configuration over a list of instances."""

    machine_description: str
    instances: List[InstanceResult] = field(default_factory=list)

    def labels(self) -> List[str]:
        labels: List[str] = []
        for inst in self.instances:
            for label in inst.costs:
                if label not in labels:
                    labels.append(label)
        return labels

    def mean_ratio(self, label: str, baseline: str = "Cilk") -> float:
        """Geometric-mean cost ratio of ``label`` to ``baseline``."""
        ratios = [inst.ratio(label, baseline) for inst in self.instances]
        return geometric_mean(ratios)

    def improvement(self, label: str, baseline: str) -> float:
        """Cost reduction of ``label`` relative to ``baseline`` (e.g. 0.24 = 24%)."""
        return 1.0 - self.mean_ratio(label, baseline)


def run_instance(
    dag: ComputationalDAG,
    machine: BspMachine,
    *,
    pipeline_config: Optional[PipelineConfig] = None,
    include_list_baselines: bool = True,
    include_trivial: bool = True,
    multilevel_config: Optional[MultilevelConfig] = None,
    baselines_only: bool = False,
) -> InstanceResult:
    """Run the baselines (and the framework stages) on a single instance."""
    costs: Dict[str, float] = {}
    result = InstanceResult(dag_name=dag.name, num_nodes=dag.n, machine=machine, costs=costs)

    costs["Cilk"] = float(CilkScheduler(seed=0).schedule(dag, machine).cost())
    costs["HDagg"] = float(HDaggScheduler().schedule(dag, machine).cost())
    if include_list_baselines:
        costs["BL-EST"] = float(BlEstScheduler().schedule(dag, machine).cost())
        costs["ETF"] = float(EtfScheduler().schedule(dag, machine).cost())
    if include_trivial:
        costs["Trivial"] = float(TrivialScheduler().schedule(dag, machine).cost())
    if baselines_only:
        return result

    pipe = run_pipeline(dag, machine, pipeline_config)
    costs["Init"] = pipe.init_cost
    costs["HCcs"] = pipe.local_search_cost
    costs["ILPpart"] = pipe.ilp_assignment_cost
    costs["ILP"] = pipe.final_cost
    result.best_initializer = pipe.best_initializer
    result.initializer_costs = dict(pipe.initializer_costs)

    if multilevel_config is not None:
        ml_schedule, per_ratio = multilevel_schedule(dag, machine, multilevel_config)
        costs["ML"] = float(ml_schedule.cost())
        for ratio, cost in per_ratio.items():
            costs[f"ML@{ratio:g}"] = float(cost)
    return result


def run_experiment(
    dags: Sequence[ComputationalDAG],
    machine: BspMachine,
    *,
    pipeline_config: Optional[PipelineConfig] = None,
    include_list_baselines: bool = True,
    multilevel_config: Optional[MultilevelConfig] = None,
    baselines_only: bool = False,
) -> ExperimentResult:
    """Run :func:`run_instance` over a dataset and collect the results."""
    experiment = ExperimentResult(machine_description=machine.describe())
    for dag in dags:
        experiment.instances.append(
            run_instance(
                dag,
                machine,
                pipeline_config=pipeline_config,
                include_list_baselines=include_list_baselines,
                multilevel_config=multilevel_config,
                baselines_only=baselines_only,
            )
        )
    return experiment


def stage_ratio_summary(
    experiment: ExperimentResult, baseline: str = "Cilk", labels: Optional[Iterable[str]] = None
) -> Dict[str, float]:
    """Geometric-mean cost ratio (vs ``baseline``) for each requested label.

    This is the data behind the bar charts of Figures 5, 6 and 7: every
    algorithm's mean cost normalized to the Cilk baseline.
    """
    if labels is None:
        labels = experiment.labels()
    summary: Dict[str, float] = {}
    for label in labels:
        try:
            summary[label] = experiment.mean_ratio(label, baseline)
        except KeyError:
            continue
    return summary
