"""Regeneration of every table and figure of the paper's evaluation.

Each ``make_*`` function runs the relevant experiment configuration over the
datasets it is given and returns one or more :class:`~repro.experiments.report.Table`
objects whose rows mirror the corresponding table/figure of the paper.  The
benchmark harness under ``benchmarks/`` calls these functions with
(reduced-scale) datasets and prints the resulting tables; EXPERIMENTS.md
records the measured numbers next to the paper's.

Figures are bar charts of mean cost ratios in the paper; here they are
rendered as tables with one column per bar ("Cilk", "HDagg", "Init", "HCcs",
"ILP", optionally "ML"), normalized to the Cilk baseline exactly like the
paper's figures.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs.dag import ComputationalDAG
from ..model.machine import BspMachine
from ..pipeline.config import MultilevelConfig, PipelineConfig
from .report import Table, format_percent
from .runner import ExperimentResult, run_experiment, stage_ratio_summary

__all__ = [
    "make_table1_no_numa",
    "make_figure5_stage_ratios",
    "make_table2_numa",
    "make_figure6_numa_with_multilevel",
    "make_table3_multilevel",
    "make_tables_4_and_5_initializers",
    "make_table6_no_numa_detail",
    "make_table7_algorithm_ratios",
    "make_table8_vs_etf",
    "make_table9_latency",
    "make_table10_numa_detail",
    "make_table11_huge",
    "make_figure7_huge_stages",
    "make_table12_huge_numa",
    "make_tables_13_and_14_multilevel_detail",
    "REPRO_TARGETS",
    "reproduce",
]

Datasets = Dict[str, List[ComputationalDAG]]


def _improvement_cell(experiment: ExperimentResult, label: str = "ILP") -> str:
    """The paper's two-number cell: reduction vs Cilk / reduction vs HDagg."""
    vs_cilk = experiment.improvement(label, "Cilk")
    vs_hdagg = experiment.improvement(label, "HDagg")
    return f"{format_percent(vs_cilk)} / {format_percent(vs_hdagg)}"


def _merge(experiments: Iterable[ExperimentResult]) -> ExperimentResult:
    merged = ExperimentResult(machine_description="merged")
    for exp in experiments:
        merged.instances.extend(exp.instances)
    return merged


# ----------------------------------------------------------------------
# Table 1 + Figure 5 + Table 6: the no-NUMA comparison
# ----------------------------------------------------------------------
def _run_no_numa_grid(
    datasets: Datasets,
    P_values: Sequence[int],
    g_values: Sequence[float],
    latency: float,
    config: Optional[PipelineConfig],
    include_list_baselines: bool = False,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, float, int], ExperimentResult]:
    """Run the framework on every (dataset, g, P) combination without NUMA."""
    results: Dict[Tuple[str, float, int], ExperimentResult] = {}
    for ds_name, dags in datasets.items():
        for g in g_values:
            for P in P_values:
                machine = BspMachine(P=P, g=g, l=latency)
                results[(ds_name, g, P)] = run_experiment(
                    dags,
                    machine,
                    pipeline_config=config,
                    include_list_baselines=include_list_baselines,
                    jobs=jobs,
                )
    return results


def make_table1_no_numa(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, float, int], ExperimentResult]] = None,
) -> Tuple[Table, Table, Dict[Tuple[str, float, int], ExperimentResult]]:
    """Table 1: cost reduction vs Cilk / HDagg by (g, P) and by (g, dataset)."""
    if grid is None:
        grid = _run_no_numa_grid(datasets, P_values, g_values, latency, config, jobs=jobs)

    by_p = Table("Table 1 (left): reduction vs Cilk / HDagg by g and P", ["P \\ g"] + [f"g={g:g}" for g in g_values])
    for P in P_values:
        row = [f"P={P}"]
        for g in g_values:
            merged = _merge(grid[(ds, g, P)] for ds in datasets)
            row.append(_improvement_cell(merged))
        by_p.add_row(*row)

    by_ds = Table(
        "Table 1 (right): reduction vs Cilk / HDagg by g and dataset",
        ["dataset \\ g"] + [f"g={g:g}" for g in g_values],
    )
    for ds_name in datasets:
        row = [ds_name]
        for g in g_values:
            merged = _merge(grid[(ds_name, g, P)] for P in P_values)
            row.append(_improvement_cell(merged))
        by_ds.add_row(*row)
    return by_p, by_ds, grid


def make_figure5_stage_ratios(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, float, int], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, float, int], ExperimentResult]]:
    """Figure 5: mean cost ratios (normalized to Cilk) per g, without NUMA."""
    if grid is None:
        grid = _run_no_numa_grid(datasets, P_values, g_values, latency, config, jobs=jobs)
    labels = ["Cilk", "HDagg", "Init", "HCcs", "ILP"]
    table = Table("Figure 5: mean cost ratio normalized to Cilk, per g", ["g"] + labels)
    for g in g_values:
        merged = _merge(grid[(ds, g, P)] for ds in datasets for P in P_values)
        summary = stage_ratio_summary(merged, "Cilk", labels)
        table.add_row(f"g={g:g}", *[f"{summary[l]:.3f}" for l in labels])
    return table, grid


def make_table6_no_numa_detail(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, float, int], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, float, int], ExperimentResult]]:
    """Table 6: improvement for every (g, P, dataset) combination (no NUMA)."""
    if grid is None:
        grid = _run_no_numa_grid(datasets, P_values, g_values, latency, config, jobs=jobs)
    headers = ["dataset"] + [f"g={g:g},P={P}" for g in g_values for P in P_values]
    table = Table("Table 6: reduction vs Cilk / HDagg per (g, P, dataset)", headers)
    for ds_name in datasets:
        row = [ds_name]
        for g in g_values:
            for P in P_values:
                row.append(_improvement_cell(grid[(ds_name, g, P)]))
        table.add_row(*row)
    return table, grid


# ----------------------------------------------------------------------
# NUMA experiments: Table 2, Figure 6, Table 3, Table 10, Tables 13/14
# ----------------------------------------------------------------------
def _run_numa_grid(
    datasets: Datasets,
    P_values: Sequence[int],
    delta_values: Sequence[float],
    g: float,
    latency: float,
    config: Optional[PipelineConfig],
    multilevel_config: Optional[MultilevelConfig],
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, int, float], ExperimentResult]:
    results: Dict[Tuple[str, int, float], ExperimentResult] = {}
    for ds_name, dags in datasets.items():
        for P in P_values:
            for delta in delta_values:
                machine = BspMachine.hierarchical(P=P, delta=delta, g=g, l=latency)
                results[(ds_name, P, delta)] = run_experiment(
                    dags,
                    machine,
                    pipeline_config=config,
                    include_list_baselines=False,
                    multilevel_config=multilevel_config,
                    jobs=jobs,
                )
    return results


def make_table2_numa(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, int, float], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, int, float], ExperimentResult]]:
    """Table 2: cost reduction of the base scheduler with NUMA, by (P, delta)."""
    if grid is None:
        grid = _run_numa_grid(datasets, P_values, delta_values, g, latency, config, None, jobs=jobs)
    table = Table(
        "Table 2: reduction vs Cilk / HDagg with NUMA, by P and delta",
        ["P \\ delta"] + [f"delta={d:g}" for d in delta_values],
    )
    for P in P_values:
        row = [f"P={P}"]
        for delta in delta_values:
            merged = _merge(grid[(ds, P, delta)] for ds in datasets)
            row.append(_improvement_cell(merged))
        table.add_row(*row)
    return table, grid


def make_figure6_numa_with_multilevel(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    multilevel_config: Optional[MultilevelConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, int, float], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, int, float], ExperimentResult]]:
    """Figure 6: mean cost ratios (vs Cilk) incl. the multilevel scheduler."""
    if multilevel_config is None:
        multilevel_config = MultilevelConfig(base_pipeline=config or PipelineConfig.fast())
    if grid is None:
        grid = _run_numa_grid(datasets, P_values, delta_values, g, latency, config, multilevel_config, jobs=jobs)
    labels = ["Cilk", "HDagg", "Init", "HCcs", "ILP", "ML"]
    table = Table(
        "Figure 6: mean cost ratio normalized to Cilk, per (P, delta), with NUMA",
        ["P, delta"] + labels,
    )
    for P in P_values:
        for delta in delta_values:
            merged = _merge(grid[(ds, P, delta)] for ds in datasets)
            summary = stage_ratio_summary(merged, "Cilk", labels)
            table.add_row(
                f"P={P}, d={delta:g}",
                *[f"{summary.get(l, float('nan')):.3f}" for l in labels],
            )
    return table, grid


def make_table3_multilevel(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    multilevel_config: Optional[MultilevelConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, int, float], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, int, float], ExperimentResult]]:
    """Table 3: cost reduction of the multilevel scheduler by (P, delta)."""
    if multilevel_config is None:
        multilevel_config = MultilevelConfig(base_pipeline=config or PipelineConfig.fast())
    if grid is None:
        grid = _run_numa_grid(datasets, P_values, delta_values, g, latency, config, multilevel_config, jobs=jobs)
    table = Table(
        "Table 3: reduction of the multilevel scheduler vs Cilk / HDagg",
        ["P \\ delta"] + [f"delta={d:g}" for d in delta_values],
    )
    for P in P_values:
        row = [f"P={P}"]
        for delta in delta_values:
            merged = _merge(grid[(ds, P, delta)] for ds in datasets)
            row.append(_improvement_cell(merged, label="ML"))
        table.add_row(*row)
    return table, grid


def make_table10_numa_detail(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, int, float], ExperimentResult]] = None,
) -> Tuple[Table, Dict[Tuple[str, int, float], ExperimentResult]]:
    """Table 10: NUMA improvement for every (P, delta, dataset) combination."""
    if grid is None:
        grid = _run_numa_grid(datasets, P_values, delta_values, g, latency, config, None, jobs=jobs)
    headers = ["dataset"] + [f"P={P},d={d:g}" for P in P_values for d in delta_values]
    table = Table("Table 10: reduction vs Cilk / HDagg per (P, delta, dataset)", headers)
    for ds_name in datasets:
        row = [ds_name]
        for P in P_values:
            for delta in delta_values:
                row.append(_improvement_cell(grid[(ds_name, P, delta)]))
        table.add_row(*row)
    return table, grid


def make_tables_13_and_14_multilevel_detail(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    multilevel_config: Optional[MultilevelConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[str, int, float], ExperimentResult]] = None,
) -> Tuple[Table, Table, Dict[Tuple[str, int, float], ExperimentResult]]:
    """Tables 13 and 14: multilevel variants (C15 / C30 / C_opt) vs baselines
    and vs the base scheduler."""
    if multilevel_config is None:
        multilevel_config = MultilevelConfig(base_pipeline=config or PipelineConfig.fast())
    if grid is None:
        grid = _run_numa_grid(datasets, P_values, delta_values, g, latency, config, multilevel_config, jobs=jobs)
    ratios = sorted(multilevel_config.coarsening_ratios)
    variant_labels = [f"ML@{r:g}" for r in ratios] + ["ML"]
    variant_names = [f"C{int(round(r * 100))}" for r in ratios] + ["C_opt"]

    t13 = Table(
        "Table 13: multilevel reduction vs Cilk / HDagg per coarsening variant",
        ["variant"] + [f"P={P},d={d:g}" for P in P_values for d in delta_values],
    )
    t14 = Table(
        "Table 14: cost ratio of the multilevel scheduler to the base scheduler",
        ["variant"] + [f"P={P},d={d:g}" for P in P_values for d in delta_values],
    )
    for label, name in zip(variant_labels, variant_names):
        row13 = [name]
        row14 = [name]
        for P in P_values:
            for delta in delta_values:
                merged = _merge(grid[(ds, P, delta)] for ds in datasets)
                row13.append(_improvement_cell(merged, label=label))
                row14.append(f"{merged.mean_ratio(label, 'ILP'):.3f}")
        t13.add_row(*row13)
        t14.add_row(*row14)
    return t13, t14, grid


# ----------------------------------------------------------------------
# Tables 4 / 5: initializer comparison on the training set
# ----------------------------------------------------------------------
def make_tables_4_and_5_initializers(
    training_set: Sequence[ComputationalDAG],
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Tuple[Table, Table]:
    """Tables 4 and 5: how often each initialization heuristic wins.

    Table 4 covers the shallow spmv instances (split by P); Table 5 covers
    the remaining kernels (split by P and by DAG size).
    """
    from .runner import PIPELINE_ITEM, ParallelRunner, WorkItem

    if config is None:
        config = PipelineConfig.fast()
    wins_spmv: Dict[int, Counter] = {P: Counter() for P in P_values}
    wins_other: Dict[Tuple[int, str], Counter] = {}
    size_buckets = ["small n", "medium n", "large n"]

    def bucket_of(n: int) -> str:
        sizes = sorted(d.n for d in training_set)
        lo = sizes[len(sizes) // 3]
        hi = sizes[(2 * len(sizes)) // 3]
        if n <= lo:
            return size_buckets[0]
        if n <= hi:
            return size_buckets[1]
        return size_buckets[2]

    combos = [
        (dag, P, g)
        for dag in training_set
        for P in P_values
        for g in g_values
    ]
    items = [
        WorkItem(
            index=k,
            instance=k,
            dag=dag,
            machine=BspMachine(P=P, g=g, l=latency),
            scheduler=PIPELINE_ITEM,
            pipeline_config=config,
        )
        for k, (dag, P, g) in enumerate(combos)
    ]
    results = ParallelRunner(jobs).execute(items)
    for (dag, P, g), result in zip(combos, results):
        best = min(result.initializer_costs, key=result.initializer_costs.get)
        if "spmv" in dag.name:
            wins_spmv[P][best] += 1
        else:
            wins_other.setdefault((P, bucket_of(dag.n)), Counter())[best] += 1

    def counter_cell(counter: Counter) -> str:
        if not counter:
            return "-"
        return ", ".join(f"{name}: {count}" for name, count in counter.most_common())

    t4 = Table("Table 4: best initializer counts on spmv training instances", ["P", "wins"])
    for P in P_values:
        t4.add_row(f"P={P}", counter_cell(wins_spmv[P]))

    t5 = Table(
        "Table 5: best initializer counts on exp/cg/kNN training instances",
        ["size bucket"] + [f"P={P}" for P in P_values],
    )
    for bucket in size_buckets:
        row = [bucket]
        for P in P_values:
            row.append(counter_cell(wins_other.get((P, bucket), Counter())))
        t5.add_row(*row)
    return t4, t5


# ----------------------------------------------------------------------
# Table 7 / Table 8: algorithm-by-algorithm ratios and the ETF comparison
# ----------------------------------------------------------------------
def make_table7_algorithm_ratios(
    datasets: Datasets,
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g: float = 5,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Table:
    """Table 7: per-algorithm mean cost ratios (normalized to Cilk) for g=5."""
    labels = ["BL-EST", "ETF", "Cilk", "HDagg", "Init", "HCcs", "ILPpart", "ILP"]
    table = Table("Table 7: cost ratios normalized to Cilk (g=5)", ["dataset"] + labels)
    for ds_name, dags in datasets.items():
        merged = _merge(
            run_experiment(
                dags,
                BspMachine(P=P, g=g, l=latency),
                pipeline_config=config,
                include_list_baselines=True,
                jobs=jobs,
            )
            for P in P_values
        )
        summary = stage_ratio_summary(merged, "Cilk", labels)
        table.add_row(ds_name, *[f"{summary[l]:.3f}" for l in labels])
    table.add_note("the paper's 'ILPcs' column corresponds to the final 'ILP' column here")
    return table


def make_table8_vs_etf(
    tiny_dags: Sequence[ComputationalDAG],
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Table:
    """Table 8: cost reduction of the framework vs ETF on the tiny dataset."""
    table = Table("Table 8: reduction vs ETF on the tiny dataset", ["P \\ g"] + [f"g={g:g}" for g in g_values])
    for P in P_values:
        row = [f"P={P}"]
        for g in g_values:
            machine = BspMachine(P=P, g=g, l=latency)
            experiment = run_experiment(
                tiny_dags, machine, pipeline_config=config, include_list_baselines=True,
                jobs=jobs,
            )
            row.append(format_percent(experiment.improvement("ILP", "ETF")))
        table.add_row(*row)
    return table


# ----------------------------------------------------------------------
# Table 9: the role of latency
# ----------------------------------------------------------------------
def make_table9_latency(
    dags: Sequence[ComputationalDAG],
    *,
    latencies: Sequence[float] = (2, 5, 10, 20),
    P: int = 8,
    g: float = 1,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Table:
    """Table 9: improvement for different latency values (medium dataset)."""
    table = Table(
        "Table 9: reduction vs Cilk / HDagg for different latency values (g=1, P=8)",
        ["latency"] + ["reduction"],
    )
    for latency in latencies:
        machine = BspMachine(P=P, g=g, l=latency)
        experiment = run_experiment(
            dags, machine, pipeline_config=config, include_list_baselines=False, jobs=jobs
        )
        table.add_row(f"l={latency:g}", _improvement_cell(experiment))
    return table


# ----------------------------------------------------------------------
# The huge dataset: Table 11, Figure 7, Table 12
# ----------------------------------------------------------------------
def make_table11_huge(
    huge_dags: Sequence[ComputationalDAG],
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Tuple[Table, Dict[Tuple[float, int], ExperimentResult]]:
    """Table 11: Init+HC+HCcs on the huge dataset, without NUMA."""
    if config is None:
        config = PipelineConfig.heuristics_only()
    grid: Dict[Tuple[float, int], ExperimentResult] = {}
    table = Table(
        "Table 11: reduction vs Cilk / HDagg on the huge dataset (heuristics only)",
        ["P \\ g"] + [f"g={g:g}" for g in g_values],
    )
    for P in P_values:
        row = [f"P={P}"]
        for g in g_values:
            machine = BspMachine(P=P, g=g, l=latency)
            experiment = run_experiment(
                huge_dags, machine, pipeline_config=config, include_list_baselines=False,
                jobs=jobs,
            )
            grid[(g, P)] = experiment
            row.append(_improvement_cell(experiment))
        table.add_row(*row)
    return table, grid


def make_figure7_huge_stages(
    huge_dags: Sequence[ComputationalDAG],
    *,
    P_values: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
    grid: Optional[Dict[Tuple[float, int], ExperimentResult]] = None,
) -> Table:
    """Figure 7: stage cost ratios on the huge dataset, split by P."""
    if config is None:
        config = PipelineConfig.heuristics_only()
    labels = ["Cilk", "HDagg", "Init", "HCcs"]
    table = Table("Figure 7: mean cost ratio normalized to Cilk on the huge dataset", ["P"] + labels)
    for P in P_values:
        experiments = []
        for g in g_values:
            if grid is not None and (g, P) in grid:
                experiments.append(grid[(g, P)])
            else:
                machine = BspMachine(P=P, g=g, l=latency)
                experiments.append(
                    run_experiment(
                        huge_dags, machine, pipeline_config=config,
                        include_list_baselines=False, jobs=jobs,
                    )
                )
        merged = _merge(experiments)
        summary = stage_ratio_summary(merged, "Cilk", labels)
        table.add_row(f"P={P}", *[f"{summary[l]:.3f}" for l in labels])
    return table


def make_table12_huge_numa(
    huge_dags: Sequence[ComputationalDAG],
    *,
    P_values: Sequence[int] = (8, 16),
    delta_values: Sequence[float] = (2, 3, 4),
    g: float = 1,
    latency: float = 5,
    config: Optional[PipelineConfig] = None,
    jobs: Optional[int] = None,
) -> Table:
    """Table 12: Init+HC+HCcs on the huge dataset with NUMA effects."""
    if config is None:
        config = PipelineConfig.heuristics_only()
    table = Table(
        "Table 12: reduction vs Cilk / HDagg on the huge dataset with NUMA",
        ["P \\ delta"] + [f"delta={d:g}" for d in delta_values],
    )
    for P in P_values:
        row = [f"P={P}"]
        for delta in delta_values:
            machine = BspMachine.hierarchical(P=P, delta=delta, g=g, l=latency)
            experiment = run_experiment(
                huge_dags, machine, pipeline_config=config, include_list_baselines=False,
                jobs=jobs,
            )
            row.append(_improvement_cell(experiment))
        table.add_row(*row)
    return table


# ----------------------------------------------------------------------
# Named reproduction targets (the ``python -m repro repro`` subcommand)
# ----------------------------------------------------------------------
#: Target name -> what it regenerates.  Every entry is runnable on a laptop
#: at ``smoke`` scale; ``reduced`` / ``paper`` raise instance counts and
#: grid sizes toward the paper's setup.
REPRO_TARGETS: Dict[str, str] = {
    "table1": "reduction vs Cilk / HDagg without NUMA, by (g, P) and (g, dataset)",
    "table2": "reduction vs Cilk / HDagg with NUMA, by (P, delta)",
    "table3": "reduction of the multilevel scheduler, by (P, delta)",
    "table4": "best-initializer counts on the spmv training instances",
    "table5": "best-initializer counts on the exp/cg/kNN training instances",
    "table6": "no-NUMA improvement per (g, P, dataset)",
    "table7": "per-algorithm cost ratios normalized to Cilk (g=5)",
    "table8": "reduction vs ETF on the tiny dataset",
    "table9": "improvement for different latency values",
    "table10": "NUMA improvement per (P, delta, dataset)",
    "table11": "heuristics-only reduction on the huge dataset",
    "table12": "heuristics-only reduction on the huge dataset with NUMA",
    "table13": "multilevel reduction per coarsening variant",
    "table14": "multilevel-to-base cost ratio per coarsening variant",
    "fig5": "stage cost ratios per g, without NUMA",
    "fig6": "stage cost ratios per (P, delta) incl. multilevel, with NUMA",
    "fig7": "stage cost ratios on the huge dataset",
}

#: Instances per dataset used by :func:`reproduce` at each scale.
_REPRO_MAX_INSTANCES = {"smoke": 2, "reduced": 8, "paper": None}


def reproduce(
    target: str,
    *,
    scale: str = "smoke",
    jobs: Optional[int] = None,
    seed: int = 7,
) -> List[Table]:
    """Regenerate one paper table / figure by name (see :data:`REPRO_TARGETS`).

    The parameter grids are the reduced laptop-scale grids also used by the
    benchmark harness; the *shape* of the results reproduces the paper,
    absolute numbers do not (see EXPERIMENTS.md).
    """
    from .datasets import build_dataset, build_training_set

    target = target.strip().lower().replace("figure", "fig")
    if target not in REPRO_TARGETS:
        raise ValueError(
            f"unknown repro target {target!r}; available: {', '.join(REPRO_TARGETS)}"
        )
    max_instances = _REPRO_MAX_INSTANCES.get(scale, 2)
    config = PipelineConfig.fast() if scale == "smoke" else PipelineConfig()

    def datasets(*names: str) -> Datasets:
        return {
            name: build_dataset(name, scale=scale, max_instances=max_instances, seed=seed)
            for name in names
        }

    main = ("tiny", "small") if scale == "smoke" else ("tiny", "small", "medium", "large")
    no_numa_grid = dict(P_values=(2, 4), g_values=(1, 5), latency=5, config=config, jobs=jobs)
    numa_grid = dict(P_values=(4, 8), delta_values=(2, 4), g=1, latency=5, config=config, jobs=jobs)
    ml_config = MultilevelConfig(
        coarsening_ratios=(0.3, 0.15),
        min_coarse_nodes=8,
        hc_moves_per_refinement=50,
        base_pipeline=config,
    )
    heuristics = PipelineConfig.heuristics_only()
    if scale == "smoke":
        heuristics.hc_time_limit = 5.0
        heuristics.hccs_time_limit = 1.0

    if target == "table1":
        by_p, by_ds, _ = make_table1_no_numa(datasets(*main), **no_numa_grid)
        return [by_p, by_ds]
    if target == "fig5":
        table, _ = make_figure5_stage_ratios(datasets(*main), **no_numa_grid)
        return [table]
    if target == "table6":
        table, _ = make_table6_no_numa_detail(datasets(*main), **no_numa_grid)
        return [table]
    if target == "table2":
        table, _ = make_table2_numa(datasets(*main), **numa_grid)
        return [table]
    if target == "fig6":
        table, _ = make_figure6_numa_with_multilevel(
            datasets(*main), multilevel_config=ml_config, **numa_grid
        )
        return [table]
    if target == "table3":
        table, _ = make_table3_multilevel(
            datasets(*main), multilevel_config=ml_config, **numa_grid
        )
        return [table]
    if target == "table10":
        table, _ = make_table10_numa_detail(datasets(*main), **numa_grid)
        return [table]
    if target in ("table13", "table14"):
        t13, t14, _ = make_tables_13_and_14_multilevel_detail(
            datasets(*main), multilevel_config=ml_config, **numa_grid
        )
        return [t13] if target == "table13" else [t14]
    if target in ("table4", "table5"):
        t4, t5 = make_tables_4_and_5_initializers(
            build_training_set(scale=scale, seed=seed),
            P_values=(2, 4),
            g_values=(1, 5),
            latency=5,
            config=config,
            jobs=jobs,
        )
        return [t4] if target == "table4" else [t5]
    if target == "table7":
        return [
            make_table7_algorithm_ratios(
                datasets(*main), P_values=(2, 4), g=5, latency=5, config=config, jobs=jobs
            )
        ]
    if target == "table8":
        return [
            make_table8_vs_etf(
                datasets("tiny")["tiny"],
                P_values=(2, 4),
                g_values=(1, 5),
                latency=5,
                config=config,
                jobs=jobs,
            )
        ]
    if target == "table9":
        return [
            make_table9_latency(
                datasets("medium")["medium"],
                latencies=(2, 5, 10, 20),
                P=4,
                g=1,
                config=config,
                jobs=jobs,
            )
        ]
    huge = datasets("huge")["huge"]
    if target == "table11":
        table, _ = make_table11_huge(
            huge, P_values=(2, 4), g_values=(1, 5), latency=5, config=heuristics, jobs=jobs
        )
        return [table]
    if target == "fig7":
        return [
            make_figure7_huge_stages(
                huge, P_values=(2, 4), g_values=(1, 5), latency=5, config=heuristics, jobs=jobs
            )
        ]
    if target == "table12":
        return [
            make_table12_huge_numa(
                huge, P_values=(4, 8), delta_values=(2, 4), g=1, latency=5,
                config=heuristics, jobs=jobs,
            )
        ]
    raise AssertionError(f"unhandled target {target!r}")  # pragma: no cover
