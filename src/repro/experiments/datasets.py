"""Dataset construction for the experiments (paper Section 6, Appendix B.3).

The paper builds a training set plus five test datasets (``tiny``, ``small``,
``medium``, ``large`` and ``huge``) from fine-grained instances generated for
the four kernels (spmv, exp, cg, kNN) with varying matrix sizes and iteration
counts ("wider" and "deeper" DAGs), and adds the coarse-grained database
instances whose size fits the interval.

Because this reproduction is a pure-Python, CI-friendly build, the *default*
size intervals are scaled down (``scale="reduced"``); ``scale="paper"``
restores the paper's node ranges.  The dataset composition rules — kernels at
the beginning / middle / end of each interval, a deep and a wide variant per
iterative kernel, plus coarse-grained instances — follow the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..graphs.coarse import (
    coarse_bicgstab,
    coarse_conjugate_gradient,
    coarse_khop,
    coarse_label_propagation,
    coarse_pagerank,
)
from ..graphs.dag import ComputationalDAG
from ..graphs.fine import cg_dag, exp_dag, knn_dag, spmv_dag

__all__ = [
    "DATASET_RANGES",
    "dataset_range",
    "build_dataset",
    "build_training_set",
    "fit_fine_grained",
]


#: Node-count intervals per dataset and scale.
DATASET_RANGES: Dict[str, Dict[str, Tuple[int, int]]] = {
    "paper": {
        "tiny": (40, 80),
        "small": (250, 500),
        "medium": (1000, 2000),
        "large": (5000, 10000),
        "huge": (50000, 100000),
    },
    "reduced": {
        "tiny": (40, 80),
        "small": (100, 220),
        "medium": (250, 550),
        "large": (700, 1400),
        "huge": (2000, 4000),
    },
    # An even smaller scale used by the test-suite / smoke benchmarks.
    "smoke": {
        "tiny": (25, 60),
        "small": (60, 120),
        "medium": (120, 240),
        "large": (240, 480),
        "huge": (480, 900),
    },
}


def dataset_range(name: str, scale: str = "reduced") -> Tuple[int, int]:
    """Node-count interval of a dataset at the given scale."""
    try:
        ranges = DATASET_RANGES[scale]
    except KeyError as exc:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(DATASET_RANGES)}") from exc
    try:
        return ranges[name]
    except KeyError as exc:
        raise ValueError(f"unknown dataset {name!r}; expected one of {sorted(ranges)}") from exc


# ----------------------------------------------------------------------
# Fitting generator parameters to a target node count
# ----------------------------------------------------------------------
def fit_fine_grained(
    kind: str,
    target_nodes: int,
    *,
    deep: bool = False,
    seed: int = 0,
    tolerance: float = 0.35,
    max_attempts: int = 12,
) -> ComputationalDAG:
    """Generate a fine-grained DAG whose size is close to ``target_nodes``.

    ``deep=True`` favours more iterations (a deeper DAG) over a larger
    matrix, producing the paper's "deeper" variants; ``deep=False`` produces
    the "wider" variants.  The matrix dimension is adjusted multiplicatively
    until the generated DAG is within ``tolerance`` of the target (or the
    attempt budget runs out, in which case the closest DAG seen is returned).
    """
    if target_nodes < 5:
        raise ValueError("target_nodes too small for the fine-grained generators")
    q = 0.25
    if kind == "spmv":
        iterations = None
    elif kind in ("exp", "knn"):
        iterations = 6 if deep else 2
    elif kind == "cg":
        iterations = 4 if deep else 2
    else:
        raise ValueError(f"unknown fine-grained kernel {kind!r}")

    # Initial guess for the matrix dimension from a rough node-count model.
    if kind == "spmv":
        guess = max(4, int((target_nodes / (2 + 2 * q * 8)) ** 0.5) + 3)
    else:
        guess = max(4, int((target_nodes / (max(iterations, 1) * (1 + 2 * q * 6))) ** 0.5) + 3)

    best: Optional[ComputationalDAG] = None
    best_err = float("inf")
    N = guess
    for _attempt in range(max_attempts):
        if kind == "spmv":
            dag = spmv_dag(N, q=q, seed=seed, name=f"spmv_N{N}")
        elif kind == "exp":
            dag = exp_dag(N, k=iterations, q=q, seed=seed, name=f"exp_N{N}_k{iterations}")
        elif kind == "knn":
            dag = knn_dag(N, k=iterations, q=q, seed=seed, name=f"knn_N{N}_k{iterations}")
        else:
            dag = cg_dag(N, k=iterations, q=q, seed=seed, name=f"cg_N{N}_k{iterations}")
        err = abs(dag.n - target_nodes) / target_nodes
        if err < best_err:
            best, best_err = dag, err
        if err <= tolerance:
            break
        # Multiplicative adjustment of the matrix dimension.
        factor = (target_nodes / max(dag.n, 1)) ** 0.5
        new_N = max(3, int(round(N * factor)))
        if new_N == N:
            new_N = N + (1 if dag.n < target_nodes else -1)
        N = max(3, new_N)
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Coarse-grained instances sized to an interval
# ----------------------------------------------------------------------
_COARSE_BUILDERS: List[Tuple[str, Callable[[int], ComputationalDAG], int, int]] = [
    # (name, builder taking #iterations, nodes per iteration, fixed overhead)
    ("coarse_cg", lambda it: coarse_conjugate_gradient(it), 8, 7),
    ("coarse_bicgstab", lambda it: coarse_bicgstab(it), 10, 8),
    ("coarse_pagerank", lambda it: coarse_pagerank(it), 5, 4),
    ("coarse_labelprop", lambda it: coarse_label_propagation(it), 4, 2),
    ("coarse_khop", lambda it: coarse_khop(it), 3, 3),
]


def _coarse_instances_in_range(lo: int, hi: int, limit: int) -> List[ComputationalDAG]:
    out: List[ComputationalDAG] = []
    for (name, builder, per_it, overhead) in _COARSE_BUILDERS:
        if len(out) >= limit:
            break
        target = (lo + hi) // 2
        iterations = max(1, (target - overhead) // per_it)
        dag = builder(iterations)
        if lo <= dag.n <= hi:
            out.append(dag)
    return out


# ----------------------------------------------------------------------
# Dataset builders
# ----------------------------------------------------------------------
def build_dataset(
    name: str,
    scale: str = "reduced",
    *,
    seed: int = 0,
    max_instances: Optional[int] = None,
    include_coarse: bool = True,
) -> List[ComputationalDAG]:
    """Build one of the named datasets (``tiny``/``small``/``medium``/``large``/``huge``).

    The composition follows the paper: for each of the four fine-grained
    kernels, instances near the beginning, middle and end of the node-count
    interval; for the iterative kernels additionally a *deep* and a *wide*
    variant (except in ``tiny`` where only one variant fits); plus the
    coarse-grained instances whose size falls into the interval.
    ``max_instances`` truncates the list (used by the smoke benchmarks).
    """
    lo, hi = dataset_range(name, scale)
    anchors = [lo, (lo + hi) // 2, hi]
    dags: List[ComputationalDAG] = []
    rng_seed = seed

    for kind in ("spmv", "exp", "cg", "knn"):
        variants = [False] if (kind == "spmv" or name == "tiny") else [False, True]
        for deep in variants:
            for anchor in anchors:
                if max_instances is not None and len(dags) >= max_instances:
                    break
                dag = fit_fine_grained(kind, anchor, deep=deep, seed=rng_seed)
                suffix = "deep" if deep else "wide"
                dag.name = f"{name}_{kind}_{suffix}_{anchor}"
                dags.append(dag)
                rng_seed += 1

    if include_coarse and (max_instances is None or len(dags) < max_instances):
        budget = 4 if name == "tiny" else 3
        dags.extend(_coarse_instances_in_range(lo, hi, budget))

    if max_instances is not None:
        dags = dags[:max_instances]
    return dags


def build_training_set(scale: str = "reduced", seed: int = 100) -> List[ComputationalDAG]:
    """The small training set used to tune the initializers (Appendix C.1).

    Ten fine-grained instances spanning a wide size range: a few shallow spmv
    DAGs plus deep/wide exp, cg and kNN instances.
    """
    if scale == "paper":
        sizes = [15, 60, 150, 300, 500, 800, 1200, 1500, 1800, 2000]
    elif scale == "reduced":
        sizes = [15, 40, 80, 120, 180, 240, 320, 400, 500, 600]
    else:  # smoke
        sizes = [15, 25, 40, 60, 80, 100, 120, 150, 180, 200]
    kinds = ["spmv", "spmv", "spmv", "exp", "exp", "cg", "cg", "knn", "knn", "exp"]
    deeps = [False, False, False, False, True, False, True, False, True, True]
    dags = []
    for i, (kind, size, deep) in enumerate(zip(kinds, sizes, deeps)):
        dag = fit_fine_grained(kind, size, deep=deep, seed=seed + i)
        dag.name = f"train_{kind}_{size}"
        dags.append(dag)
    return dags
