"""Command-line interface: ``python -m repro``.

Seventeen subcommands cover the workflows a downstream user needs most
often — one-shot solving (``schedule``, ``batch``), the persistent solve
service (``serve``, ``submit``), the distributed queue runner (``enqueue``,
``worker``, ``collect``), solution-cache operations (``cache-stats``,
``cache-gc``), portfolio/registry introspection (``portfolio-explain``,
``list-schedulers``), instance tooling (``repro``, ``generate``, ``info``),
observability (``metrics``, ``trace-view``; the solving commands also take
``--trace FILE``), and the repo's own static analysis (``check``):

``schedule``
    Schedule a computational DAG (a hyperDAG file, a generated instance, or
    a ``--spec`` JSON problem/request file) on a described machine with any
    registered scheduler and print the cost breakdown, optionally comparing
    several schedulers side by side (``--schedulers a,b,c`` — parameterized
    spec strings like ``"hc(max_moves=50)"`` work; run in parallel with
    ``--jobs N``).  ``--cache-dir`` enables the portfolio solution cache.

``batch``
    Solve a JSONL file of :class:`~repro.spec.SolveRequest` objects through
    the :mod:`repro.api` facade, one result line per request (in request
    order, bytewise reproducible for deterministic schedulers), optionally
    on several worker processes with a resumable checkpoint.  A request
    whose scheduler fails yields an invalid result line instead of aborting
    the batch; a pass/fail summary goes to stderr and the exit status is
    nonzero when any request failed.

``serve``
    Run the persistent solve daemon (:mod:`repro.serve`): a line-delimited
    JSON TCP service with a bounded request queue (``--queue-size``,
    queue-full backpressure), a worker pool (``--jobs``), one shared warm
    solution cache (``--cache-dir``), optional per-request timeouts
    (``--timeout``), and a stats/health endpoint.  SIGTERM/SIGINT drain
    in-flight requests before exit.

``submit``
    Solve a JSONL file of requests against a running daemon
    (``--addr host:port``) through the thin client, streaming result lines
    in request order; output and exit status mirror ``batch``.

``enqueue``
    Split a JSONL file of solve requests into task files on a shared
    directory queue (:mod:`repro.distrib`), one atomic claimable envelope
    per request, and write an ordered batch manifest for ``collect``.

``worker``
    Drain a directory queue: claim tasks via atomic rename, solve them
    through the same tolerant path as ``batch`` (sharing the solution cache
    via ``--cache-dir`` / ``REPRO_CACHE_DIR``), write results next to the
    requests, retry machinery failures and dead-letter them after
    ``--max-attempts``.  Exits when the queue is drained (or keeps polling
    with ``--max-idle``).

``collect``
    Assemble the results of an enqueued batch (by manifest) into a JSONL
    file in request order — byte-identical to what ``repro batch`` would
    have produced for deterministic schedulers; optionally ``--wait`` for
    workers that are still solving.

``cache-stats``
    Telemetry of a solution cache directory (entries, bytes, shards, LRU
    occupancy, per-session hit/miss counters) — or, with ``--addr``, the
    live counters of a running daemon's shared cache.

``cache-gc``
    Size-bounded eviction of a solution cache directory: delete the
    least-recently-used entries (per-shard access journals provide the
    ordering) until the directory fits ``--max-bytes`` / ``--max-entries``;
    ``--dry-run`` previews.  The same eviction runs automatically on every
    store of a cache constructed with budgets (or with
    ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES`` set).

``portfolio-explain``
    Show what the portfolio subsystem sees for an instance: the extracted
    feature vector, the selection rule that fires, the chosen scheduler
    spec, the canonical instance signature and (with a cache) whether the
    solution is already cached.

``list-schedulers``
    Print the registry: every registered scheduler with its metadata
    (label, description, deterministic / NUMA-aware flags, parameters).

``metrics``
    Scrape a running solve daemon (``--addr host:port``) and print its
    metrics registry in Prometheus text exposition format — request /
    cache / error counters, latency quantiles, queue depth and uptime.
    The same payload is available programmatically through the ``metrics``
    wire op (:meth:`repro.serve.client.ServiceClient.metrics`).

``trace-view``
    Summarize a ``repro-trace/1`` JSONL file written by ``--trace``: the
    per-stage wall-time breakdown (total and self time), the slowest
    individual spans, and cache hit/miss attribution.

``repro``
    Regenerate one table or figure of the paper's evaluation by name
    (``table1`` .. ``table14``, ``fig5`` .. ``fig7``) on laptop-scale
    datasets, optionally on several worker processes (``--jobs N``).

``generate``
    Generate a computational DAG with one of the paper's generators and
    write it to a hyperDAG file.

``info``
    Print structural statistics of a hyperDAG file.

``check``
    Run the project-specific static-analysis suite (:mod:`repro.checks`):
    determinism lint, serve lock-discipline, registry/protocol contract
    audits, frozen-spec mutation.  Findings can be suppressed per line
    (``# repro-check: disable=<rule>``) or grandfathered in the committed
    baseline file.

Examples::

    python -m repro generate --kind spmv --size 12 --out spmv.hdag
    python -m repro info spmv.hdag
    python -m repro schedule spmv.hdag -P 4 -g 3 -l 5 --schedulers framework,cilk,hdagg --jobs 3
    python -m repro schedule --kind cg --size 8 -P 8 -g 1 -l 5 --delta 3 --scheduler multilevel
    python -m repro schedule --kind spmv --size 10 -P 4 --memory-bound 40 \
        --schedulers "greedy-mem,hc(init=greedy-mem)"
    python -m repro schedule --spec request.json
    python -m repro schedule --kind spmv --size 10 -P 4 --scheduler portfolio --cache-dir .cache
    python -m repro portfolio-explain --kind cg --size 8 -P 8 --delta 3
    python -m repro list-schedulers
    python -m repro batch requests.jsonl --jobs 4 --out results.jsonl
    python -m repro serve --port 7464 --jobs 4 --queue-size 128 --cache-dir .cache
    python -m repro submit requests.jsonl --addr 127.0.0.1:7464 --out results.jsonl
    python -m repro cache-stats --cache-dir .cache
    python -m repro cache-stats --addr 127.0.0.1:7464
    python -m repro cache-gc --cache-dir .cache --max-bytes 67108864
    python -m repro enqueue requests.jsonl --queue /shared/q --manifest batch1
    python -m repro worker /shared/q --cache-dir /shared/cache
    python -m repro collect /shared/q batch1 --wait --out results.jsonl
    python -m repro repro table1 --jobs 4
    python -m repro repro --list
    python -m repro schedule --kind cg --size 8 -P 8 --scheduler multilevel --trace trace.jsonl
    python -m repro trace-view trace.jsonl --top 5
    python -m repro metrics --addr 127.0.0.1:7464
    python -m repro check src tests benchmarks
    python -m repro check --format json --rules determinism,lock-discipline
    python -m repro --version

The inventory above is doctested against the parser itself, so this
docstring cannot drift silently when a subcommand is added::

    >>> from repro.cli import subcommands
    >>> for name in subcommands():
    ...     print(name)
    batch
    cache-gc
    cache-stats
    check
    collect
    enqueue
    generate
    info
    list-schedulers
    metrics
    portfolio-explain
    repro
    schedule
    serve
    submit
    trace-view
    worker
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Iterator, List, Optional, Sequence

from .graphs.analysis import dag_statistics
from .graphs.coarse import COARSE_GRAINED_GENERATORS, generate_coarse_grained
from .graphs.dag import ComputationalDAG
from .graphs.fine import FINE_GRAINED_GENERATORS, generate_fine_grained
from .graphs.hyperdag import read_hyperdag, write_hyperdag
from .model.inspect import describe_schedule, schedule_to_text_gantt
from .model.machine import BspMachine
from .registry import available_schedulers, split_scheduler_list
from .spec import ProblemSpec, SolveRequest, SpecError

__all__ = ["main", "build_parser", "subcommands"]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _load_or_generate_dag(args: argparse.Namespace) -> ComputationalDAG:
    if getattr(args, "dag_file", None):
        return read_hyperdag(args.dag_file)
    if not getattr(args, "kind", None):
        raise SystemExit("either a hyperDAG file, --kind, or --spec must be given")
    return _generate(args.kind, args.size, args.iterations, args.density, args.seed)


def _load_spec_file(path: str) -> "SolveRequest | ProblemSpec":
    """Read a ``--spec`` JSON file: a SolveRequest or a bare ProblemSpec."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read spec file {path!r}: {exc}") from exc
    try:
        if isinstance(data, dict) and "spec" in data:
            return SolveRequest.from_dict(data)
        return ProblemSpec.from_dict(data)
    except (SpecError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid spec file {path!r}: {exc}") from exc


def _generate(kind: str, size: int, iterations: int, density: float, seed: int) -> ComputationalDAG:
    if kind in FINE_GRAINED_GENERATORS:
        kwargs = {"n": size, "q": density, "seed": seed}
        if kind != "spmv":
            kwargs["k"] = iterations
        return generate_fine_grained(kind, **kwargs)
    if kind in COARSE_GRAINED_GENERATORS:
        return generate_coarse_grained(kind, iterations=iterations)
    raise SystemExit(
        f"unknown DAG kind {kind!r}; fine-grained: {sorted(FINE_GRAINED_GENERATORS)}, "
        f"coarse-grained: {sorted(COARSE_GRAINED_GENERATORS)}"
    )


def _build_machine(args: argparse.Namespace) -> BspMachine:
    if args.delta is not None:
        machine = BspMachine.hierarchical(
            P=args.processors, delta=args.delta, g=args.g, l=args.latency
        )
    else:
        machine = BspMachine(P=args.processors, g=args.g, l=args.latency)
    if getattr(args, "memory_bound", None) is not None:
        machine = machine.with_memory_bound(args.memory_bound)
    return machine


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-P", "--processors", type=int, default=4, help="number of processors")
    parser.add_argument("-g", type=float, default=1.0, help="per-unit communication cost")
    parser.add_argument("-l", "--latency", type=float, default=5.0, help="per-superstep latency")
    parser.add_argument(
        "--delta",
        type=float,
        default=None,
        help="NUMA factor of a binary-tree hierarchy (omit for a uniform machine)",
    )
    parser.add_argument(
        "--memory-bound",
        type=float,
        default=None,
        metavar="M",
        help="per-processor memory bound of the memory-constrained model "
        "(use memory-aware schedulers such as greedy-mem, hc, multilevel)",
    )


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="directory of the content-addressed solution cache used by "
        "portfolio schedulers (defaults to $REPRO_CACHE_DIR; omit to disable)",
    )


def _apply_cache_dir(args: argparse.Namespace) -> None:
    """Install ``--cache-dir`` as the process default portfolio cache."""
    if getattr(args, "cache_dir", None):
        from .portfolio.cache import set_default_cache_dir

        set_default_cache_dir(args.cache_dir)


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a repro-trace/1 JSONL span trace of this run to FILE "
        "(summarize with `repro trace-view`; results are unaffected)",
    )


@contextlib.contextmanager
def _trace_scope(args: argparse.Namespace, root: str) -> Iterator[None]:
    """Trace the command into ``args.trace`` when given; no-op otherwise.

    The trace file is written even when the command exits with an error, so
    a failed run can still be inspected with ``repro trace-view``.
    """
    trace_file = getattr(args, "trace", None)
    if not trace_file:
        yield
        return
    from .obs import trace as _trace

    tracer = _trace.Tracer()
    previous = _trace.install(tracer)
    try:
        with tracer.span(root):
            yield
    finally:
        _trace.install(previous)
        count = tracer.write(trace_file)
        print(f"wrote trace of {count} span(s) to {trace_file}", file=sys.stderr)


def _add_generator_arguments(parser: argparse.ArgumentParser, require_kind: bool) -> None:
    parser.add_argument(
        "--kind",
        required=require_kind,
        help="generator to use (spmv, exp, cg, knn, pagerank, bicgstab, ...)",
    )
    parser.add_argument("--size", type=int, default=10, help="matrix dimension for fine-grained kinds")
    parser.add_argument("--iterations", type=int, default=3, help="iteration count (exp/cg/knn/coarse kinds)")
    parser.add_argument("--density", type=float, default=0.25, help="nonzero probability of the random matrix")
    parser.add_argument("--seed", type=int, default=0, help="random seed of the generator")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSP+NUMA DAG scheduling (reproduction of Papp et al., SPAA 2024)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # schedule ----------------------------------------------------------
    p_sched = sub.add_parser("schedule", help="schedule a DAG and print the cost breakdown")
    p_sched.add_argument("dag_file", nargs="?", help="hyperDAG file (omit to use --kind or --spec)")
    _add_generator_arguments(p_sched, require_kind=False)
    _add_machine_arguments(p_sched)
    p_sched.add_argument(
        "--spec",
        metavar="FILE",
        help="JSON problem spec or solve request (overrides the DAG/machine flags)",
    )
    p_sched.add_argument(
        "--scheduler",
        default="framework",
        help=f"scheduler to run (one of: {', '.join(available_schedulers())})",
    )
    p_sched.add_argument(
        "--compare",
        nargs="*",
        default=[],
        metavar="SCHEDULER",
        help="additional schedulers to run for comparison",
    )
    p_sched.add_argument(
        "--schedulers",
        metavar="A,B,C",
        help="comma-separated scheduler list (overrides --scheduler/--compare; "
        "the first entry is the primary scheduler)",
    )
    p_sched.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes used to run the schedulers (default: 1)",
    )
    p_sched.add_argument("--gantt", action="store_true", help="print a text Gantt view of the schedule")
    p_sched.add_argument("--out", help="write the scheduled DAG assignment to this file (CSV)")
    _add_cache_argument(p_sched)
    _add_trace_argument(p_sched)

    # batch -------------------------------------------------------------
    p_batch = sub.add_parser(
        "batch", help="solve a JSONL file of solve requests through the API facade"
    )
    p_batch.add_argument("requests_file", help="JSONL file with one SolveRequest per line")
    p_batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes used to solve the requests (default: 1)",
    )
    p_batch.add_argument(
        "--out",
        metavar="FILE",
        help="write results to this JSONL file (default: stdout)",
    )
    p_batch.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="append finished requests to this JSONL checkpoint as they complete",
    )
    p_batch.add_argument(
        "--resume",
        action="store_true",
        help="skip requests whose results are already in the checkpoint",
    )
    p_batch.add_argument(
        "--timing",
        action="store_true",
        help="include wall-clock seconds in every result (non-deterministic output)",
    )
    _add_cache_argument(p_batch)
    _add_trace_argument(p_batch)

    # serve --------------------------------------------------------------
    p_serve = sub.add_parser(
        "serve",
        help="run the persistent solve daemon (line-delimited JSON over TCP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default: 127.0.0.1)")
    p_serve.add_argument(
        "--port",
        type=int,
        default=7464,
        help="TCP port to listen on (0 picks an ephemeral port; default: 7464)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker threads executing solve requests (default: 2)",
    )
    p_serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        metavar="N",
        help="bound of the request queue; a full queue answers queue-full "
        "with a retry-after hint instead of buffering (default: 64)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request timeout (requests may override; "
        "default: none)",
    )
    _add_cache_argument(p_serve)
    _add_trace_argument(p_serve)

    # submit -------------------------------------------------------------
    p_submit = sub.add_parser(
        "submit",
        help="solve a JSONL file of solve requests on a running solve daemon",
    )
    p_submit.add_argument("requests_file", help="JSONL file with one SolveRequest per line")
    p_submit.add_argument(
        "--addr",
        default="127.0.0.1:7464",
        metavar="HOST:PORT",
        help="address of the solve daemon (default: 127.0.0.1:7464)",
    )
    p_submit.add_argument(
        "--out",
        metavar="FILE",
        help="write results to this JSONL file (default: stream to stdout)",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout enforced by the daemon (default: none)",
    )
    p_submit.add_argument(
        "--timing",
        action="store_true",
        help="include wall-clock seconds in every result (non-deterministic output)",
    )

    # metrics ------------------------------------------------------------
    p_metrics = sub.add_parser(
        "metrics",
        help="scrape a running solve daemon's metrics (Prometheus text format)",
    )
    p_metrics.add_argument(
        "--addr",
        default="127.0.0.1:7464",
        metavar="HOST:PORT",
        help="address of the solve daemon (default: 127.0.0.1:7464)",
    )

    # enqueue ------------------------------------------------------------
    p_enq = sub.add_parser(
        "enqueue",
        help="enqueue a JSONL file of solve requests on a shared directory queue",
    )
    p_enq.add_argument("requests_file", help="JSONL file with one SolveRequest per line")
    p_enq.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="queue directory (shared between producers and workers)",
    )
    p_enq.add_argument(
        "--manifest",
        metavar="NAME",
        default=None,
        help="manifest name for `repro collect` (default: a fresh batch id)",
    )

    # worker -------------------------------------------------------------
    p_worker = sub.add_parser(
        "worker",
        help="drain a directory queue: claim, solve, answer (pull-based worker)",
    )
    p_worker.add_argument("queue_dir", help="queue directory to drain")
    p_worker.add_argument(
        "--max-idle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep polling this long after the queue empties "
        "(default: 0 — exit as soon as a scan finds no work)",
    )
    p_worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="sleep between idle scans (default: 0.2)",
    )
    p_worker.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="dead-letter a task after N failed attempts (default: 3)",
    )
    p_worker.add_argument(
        "--recover-claimed",
        action="store_true",
        help="requeue stale claims of crashed workers before draining "
        "(only safe when no other worker is live)",
    )
    _add_cache_argument(p_worker)
    _add_trace_argument(p_worker)

    # collect ------------------------------------------------------------
    p_collect = sub.add_parser(
        "collect",
        help="assemble the results of an enqueued batch into ordered JSONL",
    )
    p_collect.add_argument("queue_dir", help="queue directory of the batch")
    p_collect.add_argument("manifest", help="manifest name printed by `repro enqueue`")
    p_collect.add_argument(
        "--out",
        metavar="FILE",
        help="write results to this JSONL file (default: stdout)",
    )
    p_collect.add_argument(
        "--wait",
        action="store_true",
        help="poll until every request of the batch is answered or dead-lettered",
    )
    p_collect.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after this long (with --wait)",
    )
    p_collect.add_argument(
        "--timing",
        action="store_true",
        help="include wall-clock seconds in every result (non-deterministic output)",
    )

    # cache-stats --------------------------------------------------------
    p_cache = sub.add_parser(
        "cache-stats",
        help="print solution-cache telemetry (a directory, or a live daemon)",
    )
    p_cache.add_argument(
        "--addr",
        default=None,
        metavar="HOST:PORT",
        help="query a running solve daemon instead of walking a directory",
    )
    _add_cache_argument(p_cache)

    # cache-gc -----------------------------------------------------------
    p_gc = sub.add_parser(
        "cache-gc",
        help="evict least-recently-used solution-cache entries down to a budget",
    )
    _add_cache_argument(p_gc)
    p_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget of the on-disk tier (default: $REPRO_CACHE_MAX_BYTES)",
    )
    p_gc.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="entry budget of the on-disk tier (default: $REPRO_CACHE_MAX_ENTRIES)",
    )
    p_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )

    # portfolio-explain --------------------------------------------------
    p_explain = sub.add_parser(
        "portfolio-explain",
        help="show the features, selection rule and cache status of an instance",
    )
    p_explain.add_argument(
        "dag_file", nargs="?", help="hyperDAG file (omit to use --kind or --spec)"
    )
    _add_generator_arguments(p_explain, require_kind=False)
    _add_machine_arguments(p_explain)
    p_explain.add_argument(
        "--spec",
        metavar="FILE",
        help="JSON problem spec or solve request (overrides the DAG/machine flags)",
    )
    p_explain.add_argument(
        "--portfolio",
        metavar="SPEC",
        default="portfolio",
        help="portfolio spec string to explain (default: portfolio)",
    )
    _add_cache_argument(p_explain)

    # list-schedulers ----------------------------------------------------
    sub.add_parser(
        "list-schedulers",
        help="print every registered scheduler with its registry metadata",
    )

    # repro -------------------------------------------------------------
    p_repro = sub.add_parser(
        "repro", help="regenerate a table/figure of the paper's evaluation"
    )
    p_repro.add_argument(
        "target",
        nargs="?",
        help="table1..table14 or fig5..fig7 (see --list)",
    )
    p_repro.add_argument("--list", action="store_true", help="list the available targets")
    p_repro.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "reduced", "paper"),
        help="dataset scale (default: smoke, laptop friendly)",
    )
    p_repro.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes of the experiment engine (default: 1)",
    )
    p_repro.add_argument("--seed", type=int, default=7, help="dataset generation seed")
    p_repro.add_argument("--markdown", action="store_true", help="print tables as markdown")

    # generate ----------------------------------------------------------
    p_gen = sub.add_parser("generate", help="generate a computational DAG and write a hyperDAG file")
    _add_generator_arguments(p_gen, require_kind=True)
    p_gen.add_argument("--out", required=True, help="output hyperDAG file")

    # info ---------------------------------------------------------------
    p_info = sub.add_parser("info", help="print statistics of a hyperDAG file")
    p_info.add_argument("dag_file", help="hyperDAG file")

    # trace-view ---------------------------------------------------------
    p_tview = sub.add_parser(
        "trace-view",
        help="summarize a repro-trace/1 JSONL file written by --trace",
    )
    p_tview.add_argument("trace_file", help="trace file written by a --trace run")
    p_tview.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="number of slowest spans to list (default: 10)",
    )

    # check --------------------------------------------------------------
    p_check = sub.add_parser(
        "check",
        help="run the project-specific static-analysis suite (repro.checks)",
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src tests benchmarks)",
    )
    p_check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    p_check.add_argument(
        "--baseline",
        default=None,
        help="baseline file of grandfathered findings",
    )
    p_check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    p_check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    p_check.add_argument(
        "--rules",
        metavar="NAMES",
        help="comma-separated subset of rules to run (see --list-rules)",
    )
    p_check.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )

    return parser


def subcommands() -> List[str]:
    """Sorted names of every registered subcommand (doctested in the module
    docstring, so the prose inventory cannot drift from the parser)."""
    parser = build_parser()
    assert parser._subparsers is not None
    return sorted(
        choice
        for action in parser._subparsers._group_actions
        for choice in action.choices or ()
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _command_schedule(args: argparse.Namespace) -> int:
    with _trace_scope(args, "schedule"):
        return _run_schedule(args)


def _run_schedule(args: argparse.Namespace) -> int:
    from .experiments.runner import schedule_many

    _apply_cache_dir(args)
    default_scheduler = args.scheduler
    if args.spec:
        loaded = _load_spec_file(args.spec)
        if isinstance(loaded, SolveRequest):
            from .registry import canonical_scheduler_spec

            problem = loaded.spec
            # Canonicalize exactly like the batch facade does, so the
            # request's seed / time budget are not silently dropped.
            default_scheduler = canonical_scheduler_spec(
                loaded.scheduler, seed=loaded.seed, time_budget=loaded.time_budget
            )
        else:
            problem = loaded
        dag = problem.build_dag()
        machine = problem.build_machine()
    else:
        dag = _load_or_generate_dag(args)
        machine = _build_machine(args)
    if args.schedulers:
        try:
            names = split_scheduler_list(args.schedulers)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        if not names:
            raise SystemExit("--schedulers needs at least one scheduler name")
    else:
        names = [default_scheduler] + list(args.compare)
    results = schedule_many(dag, machine, names, jobs=args.jobs)

    primary_name, primary = results[0]
    print(describe_schedule(primary, name=f"{primary_name} schedule"))
    if args.gantt:
        print()
        print(schedule_to_text_gantt(primary))

    if len(results) > 1:
        print("\ncomparison (total cost, lower is better):")
        baseline_cost = results[0][1].cost()
        for name, schedule in results:
            cost = schedule.cost()
            rel = cost / baseline_cost if baseline_cost else float("nan")
            print(f"  {name:<16} {cost:>12.1f}   ({rel:.2f}x of {primary_name})")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write("node,processor,superstep\n")
            for v in range(dag.n):
                handle.write(f"{v},{int(primary.proc[v])},{int(primary.step[v])}\n")
        print(f"\nwrote assignment of {dag.n} nodes to {args.out}")
    return 0


def _load_request_file(path: str) -> list:
    from . import api

    try:
        requests = api.load_requests(path)
    except (OSError, SpecError) as exc:
        raise SystemExit(str(exc)) from exc
    if not requests:
        raise SystemExit(f"no solve requests found in {path!r}")
    return requests


def _batch_summary(results) -> int:
    """Pass/fail summary to stderr; the shared exit status of batch/submit.

    A request whose scheduler failed (or returned an invalid schedule) must
    be visible in the exit status: report a summary and exit nonzero when
    anything failed, so scripted pipelines notice.
    """
    failed = [
        (k, result) for k, result in enumerate(results, start=1) if not result.valid
    ]
    print(
        f"batch summary: {len(results) - len(failed)}/{len(results)} ok, "
        f"{len(failed)} invalid",
        file=sys.stderr,
    )
    for lineno, result in failed:
        print(
            f"  request {lineno}: {result.scheduler} on {result.dag_name}: "
            f"{result.scheduler_description or 'invalid schedule'}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _command_batch(args: argparse.Namespace) -> int:
    with _trace_scope(args, "batch"):
        return _run_batch(args)


def _run_batch(args: argparse.Namespace) -> int:
    from . import api

    _apply_cache_dir(args)
    requests = _load_request_file(args.requests_file)
    results = api.solve_many(
        requests,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        tolerant=True,
    )
    if args.out:
        api.write_results(results, args.out, timing=args.timing)
        print(
            f"solved {len(results)} request(s); wrote {args.out}",
            file=sys.stderr,
        )
    else:
        api.write_results(results, sys.stdout, timing=args.timing)
    return _batch_summary(results)


def _command_serve(args: argparse.Namespace) -> int:
    with _trace_scope(args, "serve"):
        return _run_serve(args)


def _run_serve(args: argparse.Namespace) -> int:
    from .serve.server import ServeConfig, SolveServer

    # --cache-dir is both the daemon's shared cache and the process default,
    # so portfolio requests solved by the workers warm the same directory.
    _apply_cache_dir(args)
    server = SolveServer(
        ServeConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            queue_size=args.queue_size,
            cache_dir=args.cache_dir,
            timeout=args.timeout,
        )
    )
    try:
        host, port = server.start()
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    cache = str(server.cache.root) if server.cache is not None else "disabled"
    print(
        f"repro solve daemon listening on {host}:{port} "
        f"(workers={server.pool.jobs}, queue-size={server.pool.queue_size}, cache={cache})",
        flush=True,
    )
    server.run_forever()
    stats = server.stats()
    requests = stats["requests"]
    print(
        f"drained and stopped: served {requests['served']} request(s), "
        f"{requests['cache_hits']} cache hit(s), uptime {stats['uptime_s']}s",
        file=sys.stderr,
    )
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from .serve.client import ServeError, connect

    requests = _load_request_file(args.requests_file)
    try:
        client = connect(args.addr)
    except ServeError as exc:
        raise SystemExit(str(exc)) from exc

    # Stream result lines in request order as they arrive: results are
    # buffered only while an earlier request is still in flight.
    handle = open(args.out, "w") if args.out else sys.stdout
    buffered: dict = {}
    cursor = [0]

    def emit(index: int, result) -> None:
        buffered[index] = result
        while cursor[0] in buffered:
            handle.write(buffered.pop(cursor[0]).to_json(timing=args.timing) + "\n")
            handle.flush()
            cursor[0] += 1

    try:
        results = client.solve_many(
            requests, timeout=args.timeout, tolerant=True, on_result=emit
        )
    except ServeError as exc:
        raise SystemExit(str(exc)) from exc
    finally:
        client.close()
        if args.out:
            handle.close()
    if args.out:
        print(
            f"solved {len(results)} request(s); wrote {args.out}",
            file=sys.stderr,
        )
    return _batch_summary(results)


def _command_cache_stats(args: argparse.Namespace) -> int:
    if args.addr:
        from .serve.client import ServeError, connect

        try:
            with connect(args.addr) as client:
                stats = client.stats(disk=True)
        except ServeError as exc:
            raise SystemExit(str(exc)) from exc
        cache = stats.get("cache")
        if not cache:
            print(f"daemon at {args.addr}: cache disabled")
            return 0
        print(f"solution cache of the daemon at {args.addr} (uptime {stats['uptime_s']}s):")
    else:
        from .portfolio.cache import SolutionCache, default_cache_dir

        root = args.cache_dir or default_cache_dir()
        if not root:
            raise SystemExit(
                "no cache directory: pass --cache-dir, set REPRO_CACHE_DIR, "
                "or query a running daemon with --addr"
            )
        solution_cache = SolutionCache(root)
        cache = {"dir": str(solution_cache.root)}
        cache.update(solution_cache.disk_stats())
        cache.update(solution_cache.stats())
        print("solution cache telemetry:")
    order = (
        "dir",
        "entries",
        "bytes",
        "shards",
        "lru_entries",
        "lru_capacity",
        "hits",
        "misses",
        "stores",
    )
    keys = [k for k in order if k in cache] + sorted(set(cache) - set(order))
    width = max(len(k) for k in keys)
    for key in keys:
        print(f"  {key.ljust(width)} : {cache[key]}")
    return 0


def _command_cache_gc(args: argparse.Namespace) -> int:
    from .portfolio.cache import SolutionCache, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    if not root:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    cache = SolutionCache(root)
    max_bytes = args.max_bytes if args.max_bytes is not None else cache.max_disk_bytes
    max_entries = (
        args.max_entries if args.max_entries is not None else cache.max_disk_entries
    )
    report = cache.evict(
        max_bytes=max_bytes, max_entries=max_entries, dry_run=args.dry_run
    )
    budget = []
    if max_bytes is not None:
        budget.append(f"max-bytes={max_bytes}")
    if max_entries is not None:
        budget.append(f"max-entries={max_entries}")
    mode = "dry run — would evict" if args.dry_run else "evicted"
    print(
        f"cache-gc {cache.root} ({', '.join(budget) if budget else 'no budget: compaction only'}):"
    )
    print(
        f"  {mode} {report['evicted_entries']} entr{'y' if report['evicted_entries'] == 1 else 'ies'} "
        f"({report['evicted_bytes']} bytes) of {report['scanned_entries']} "
        f"({report['scanned_bytes']} bytes)"
    )
    print(
        f"  remaining: {report['remaining_entries']} entries, {report['remaining_bytes']} bytes"
    )
    return 0


def _command_enqueue(args: argparse.Namespace) -> int:
    from .distrib.queue import DirectoryQueue

    requests = _load_request_file(args.requests_file)
    queue = DirectoryQueue(args.queue)
    manifest = args.manifest
    ids = queue.enqueue(requests)
    if manifest is None:
        manifest = ids[0].rsplit("-", 1)[0]  # the fresh batch token
    queue.write_manifest(manifest, ids)
    print(
        f"enqueued {len(ids)} request(s) on {queue.root} (manifest: {manifest})",
        file=sys.stderr,
    )
    print(manifest)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    with _trace_scope(args, "worker"):
        return _run_worker_command(args)


def _run_worker_command(args: argparse.Namespace) -> int:
    from .distrib.queue import DEFAULT_MAX_ATTEMPTS, DirectoryQueue
    from .distrib.worker import run_worker

    _apply_cache_dir(args)
    queue = DirectoryQueue(args.queue_dir)
    if args.recover_claimed:
        recovered = queue.recover_claimed()
        if recovered:
            print(f"requeued {len(recovered)} stale claim(s)", file=sys.stderr)
    stats = run_worker(
        args.queue_dir,
        max_idle=args.max_idle,
        poll_interval=args.poll_interval,
        max_attempts=(
            args.max_attempts if args.max_attempts is not None else DEFAULT_MAX_ATTEMPTS
        ),
        log=lambda line: print(line, file=sys.stderr),
    )
    print(
        f"worker drained {queue.root}: answered {stats.answered} "
        f"({stats.solved} ok, {stats.invalid} invalid), "
        f"{stats.retried} retried, {stats.dead_lettered} dead-lettered"
    )
    return 0 if not stats.dead_lettered else 1


def _command_collect(args: argparse.Namespace) -> int:
    import time

    from .distrib.queue import DirectoryQueue, QueueError

    queue = DirectoryQueue(args.queue_dir)
    try:
        ids = queue.read_manifest(args.manifest)
    except QueueError as exc:
        raise SystemExit(str(exc)) from exc
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    results: dict = {}
    failed: dict = {}
    while True:
        for task_id in ids:
            if task_id in results or task_id in failed:
                continue
            result = queue.load_result(task_id)
            if result is not None:
                results[task_id] = result
                continue
            error = queue.load_failure(task_id)
            if error is not None:
                failed[task_id] = error
        missing = [t for t in ids if t not in results and t not in failed]
        if not missing or not args.wait:
            break
        if deadline is not None and time.monotonic() > deadline:
            raise SystemExit(
                f"collect timed out: {len(missing)} of {len(ids)} request(s) unanswered"
            )
        time.sleep(0.2)
    if missing:
        raise SystemExit(
            f"{len(missing)} of {len(ids)} request(s) unanswered "
            "(workers still running? pass --wait)"
        )
    if failed:
        lines = [f"  {task_id}: {error}" for task_id, error in sorted(failed.items())]
        raise SystemExit(
            f"{len(failed)} request(s) dead-lettered:\n" + "\n".join(lines)
        )
    handle = open(args.out, "w") if args.out else sys.stdout
    try:
        for task_id in ids:
            handle.write(results[task_id].to_json(timing=args.timing) + "\n")
    finally:
        if args.out:
            handle.close()
    if args.out:
        print(
            f"collected {len(ids)} result(s); wrote {args.out}",
            file=sys.stderr,
        )
    invalid = sum(1 for task_id in ids if not results[task_id].valid)
    print(
        f"collect summary: {len(ids) - invalid}/{len(ids)} ok, {invalid} invalid",
        file=sys.stderr,
    )
    return 1 if invalid else 0


def _command_repro(args: argparse.Namespace) -> int:
    from .experiments.tables import REPRO_TARGETS, reproduce

    if args.list or not args.target:
        width = max(len(name) for name in REPRO_TARGETS)
        for name, description in REPRO_TARGETS.items():
            print(f"{name.ljust(width)} : {description}")
        if not args.list and not args.target:
            print("\npick a target: python -m repro repro <target>")
        return 0
    try:
        tables = reproduce(args.target, scale=args.scale, jobs=args.jobs, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    for table in tables:
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
    return 0


def _command_list_schedulers(args: argparse.Namespace) -> int:
    from .registry import scheduler_info

    rows = []
    for name in available_schedulers():
        info = scheduler_info(name)
        rows.append(
            (
                name,
                "yes" if info.deterministic else "no",
                "yes" if info.numa_aware else "no",
                info.description,
                ", ".join(info.parameters) if info.parameters else "-",
            )
        )
    name_w = max(len(r[0]) for r in rows)
    print(f"{'scheduler'.ljust(name_w)}  det  numa  description")
    for name, det, numa, description, parameters in rows:
        print(f"{name.ljust(name_w)}  {det:<3}  {numa:<4}  {description}")
        print(f"{''.ljust(name_w)}        parameters: {parameters}")
    return 0


def _command_portfolio_explain(args: argparse.Namespace) -> int:
    from .portfolio.features import instance_signature
    from .portfolio.selector import PortfolioScheduler
    from .registry import make_scheduler

    _apply_cache_dir(args)
    if args.spec:
        loaded = _load_spec_file(args.spec)
        problem = loaded.spec if isinstance(loaded, SolveRequest) else loaded
        dag = problem.build_dag()
        machine = problem.build_machine()
    else:
        dag = _load_or_generate_dag(args)
        machine = _build_machine(args)

    try:
        portfolio = make_scheduler(args.portfolio)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if not isinstance(portfolio, PortfolioScheduler):
        raise SystemExit(f"--portfolio must name a portfolio spec, got {args.portfolio!r}")

    signature = instance_signature(dag, machine)
    chosen, features, rule = portfolio.choose(dag, machine)

    print(f"instance  : {dag.name} ({dag.n} nodes) on {machine.describe()}")
    print(f"signature : {signature}")
    print("\nfeatures:")
    feature_dict = features.to_dict()
    width = max(len(k) for k in feature_dict)
    for key, value in feature_dict.items():
        if isinstance(value, float):
            value = round(value, 4)
        print(f"  {key.ljust(width)} : {value}")
    print(f"\nmode      : {portfolio.mode}")
    if rule is not None:
        print(f"rule      : {rule.name} — {rule.description}")
    print(f"scheduler : {chosen}")
    cache = portfolio.cache
    if cache is None:
        print("cache     : disabled (pass --cache-dir or set REPRO_CACHE_DIR)")
    else:
        entry = cache.get(signature, portfolio.spec_string(), portfolio.seed)
        entry_path = cache.entry_path(signature, portfolio.spec_string(), portfolio.seed)
        if entry is None:
            print(f"cache     : {cache.root} (miss: {entry_path.name})")
        else:
            print(f"cache     : {cache.root} (hit: {entry_path.name})")
            print(f"            solved by {entry.chosen or 'unknown'}", end="")
            if entry.result is not None:
                print(f", total cost {entry.result.total_cost}", end="")
            print()
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    dag = _generate(args.kind, args.size, args.iterations, args.density, args.seed)
    write_hyperdag(dag, args.out, comment=f"generated by `python -m repro generate --kind {args.kind}`")
    stats = dag_statistics(dag)
    print(f"wrote {args.out}: {stats.num_nodes} nodes, {stats.num_edges} edges, depth {stats.depth}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    dag = read_hyperdag(args.dag_file)
    stats = dag_statistics(dag).as_dict()
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key.ljust(width)} : {value}")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    from .serve.client import ServeError, ServiceClient

    try:
        with ServiceClient(args.addr, retries=2) as client:
            sys.stdout.write(client.metrics())
    except ServeError as exc:
        raise SystemExit(str(exc)) from exc
    return 0


def _command_trace_view(args: argparse.Namespace) -> int:
    from .obs import read_trace, render_trace_summary, validate_trace

    try:
        records = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.trace_file!r}: {exc}") from exc
    problems = validate_trace(records)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    print(render_trace_summary(records, top=args.top))
    return 0


def _command_check(args: argparse.Namespace) -> int:
    from .checks.runner import main as check_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv.append("--list-rules")
    return check_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    args = build_parser().parse_args(argv)
    if args.command == "schedule":
        return _command_schedule(args)
    if args.command == "batch":
        return _command_batch(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "cache-stats":
        return _command_cache_stats(args)
    if args.command == "cache-gc":
        return _command_cache_gc(args)
    if args.command == "enqueue":
        return _command_enqueue(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "collect":
        return _command_collect(args)
    if args.command == "portfolio-explain":
        return _command_portfolio_explain(args)
    if args.command == "list-schedulers":
        return _command_list_schedulers(args)
    if args.command == "repro":
        return _command_repro(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "info":
        return _command_info(args)
    if args.command == "trace-view":
        return _command_trace_view(args)
    if args.command == "check":
        return _command_check(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
